"""Backend-equivalence and cache-persistence checks (the CI gate's teeth).

``python -m repro.experiments.backend_check`` runs one small
:class:`~repro.experiments.engine.ExperimentSpec` under every scheduler
backend and asserts the rows are identical — including a killed-worker run
where the work-queue backend must requeue the crashed worker's cell group
onto a replacement and still produce the same rows::

    python -m repro.experiments.backend_check equivalence --workers 2

``cache`` mode runs the same spec against a persistent
:class:`~repro.experiments.cache.SqliteCellCache` file and asserts the
expected hit pattern, so CI can prove cold→warm persistence across *separate
processes* (two invocations, one file)::

    python -m repro.experiments.backend_check cache --cache-file cells.sqlite --expect cold
    python -m repro.experiments.backend_check cache --cache-file cells.sqlite --expect warm

``stream`` mode runs real attack cells — stay-point and DJ-Cluster POI
retrieval, the mix-zone census and the re-identification pair — under
``mode="batch"`` and ``mode="stream"`` and asserts the rows are
bitwise-identical, which is the streaming tier's equivalence contract (the
incremental attacks must finalize to exactly the batch results)::

    python -m repro.experiments.backend_check stream --scale small

``store`` mode writes the check world to an on-disk
:class:`~repro.io.world_store.WorldStore` artifact and asserts that the
memmap-backed world produces rows bitwise-identical to the in-memory world
under every backend, that both worlds share one cache-key fingerprint, and
that the store-backed payloads cross process boundaries as a path (a few
hundred bytes) rather than a pickled dataset::

    python -m repro.experiments.backend_check store --workers 2

Exit status is non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import pickle
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence

from .backends import MultiprocessingBackend, SerialBackend, WorkQueueBackend
from .engine import EvaluationEngine, ExperimentSpec, _world_fingerprint
from .worlds import make_world


def check_spec(scale: str = "tiny", seed: int = 5) -> ExperimentSpec:
    """The small but non-trivial spec both checks run (12 cells, 6 groups)."""
    return ExperimentSpec(
        name="backend-check",
        mechanisms=["identity", "downsampling:factor=5", "pseudonyms:seed=1"],
        metrics=["point-retention", ("spatial-distortion", "area-coverage:cell_size_m=400.0")],
        worlds=[f"standard:scale={scale},seed={seed}"],
        seeds=[0, 1],
    )


def _rows_identical(
    reference: Sequence[Dict[str, Any]],
    candidate: Sequence[Dict[str, Any]],
    label: str,
    baseline: str = "serial",
) -> bool:
    if candidate == reference:
        print(f"ok   {label}: {len(candidate)} rows identical to {baseline}")
        return True
    print(f"FAIL {label}: rows differ from {baseline}")
    for i, (ref, cand) in enumerate(zip(reference, candidate)):
        if ref != cand:
            print(
                f"  first differing row {i}:\n    {baseline}:    {ref}\n    {label}: {cand}"
            )
            break
    if len(reference) != len(candidate):
        print(
            f"  row counts differ: {baseline} {len(reference)} vs {label} {len(candidate)}"
        )
    return False


def run_equivalence(scale: str, workers: int, timeout_s: float) -> int:
    spec = check_spec(scale)
    reference = EvaluationEngine(backend=SerialBackend(), cache=False).run(spec)
    print(f"serial: {len(reference)} rows")
    failures = 0

    mp_rows = EvaluationEngine(
        backend=MultiprocessingBackend(workers=workers), cache=False
    ).run(spec)
    failures += not _rows_identical(reference, mp_rows, "multiprocessing")

    wq_backend = WorkQueueBackend(workers=workers, timeout_s=timeout_s)
    wq_rows = EvaluationEngine(backend=wq_backend, cache=False).run(spec)
    failures += not _rows_identical(reference, wq_rows, "work-queue")
    print(f"     work-queue stats: {wq_backend.last_stats}")

    crash_backend = WorkQueueBackend(
        workers=workers, timeout_s=timeout_s, fault_injection="crash-once"
    )
    crash_rows = EvaluationEngine(backend=crash_backend, cache=False).run(spec)
    failures += not _rows_identical(reference, crash_rows, "work-queue+crash")
    stats = crash_backend.last_stats
    print(f"     killed-worker stats: {stats}")
    if stats.get("workers_crashed", 0) < 1 or stats.get("requeues", 0) < 1:
        print("FAIL work-queue+crash: expected at least one crash and one requeue")
        failures += 1

    print(
        f"{3 - min(failures, 3)}/3 backends produced identical rows"
        + (" (with killed-worker requeue exercised)" if not failures else "")
    )
    return 1 if failures else 0


def run_store_check(
    scale: str, workers: int, timeout_s: float, store_dir: Optional[str] = None
) -> int:
    """In-memory vs memmap-backed world: identical rows under every backend.

    This is the correctness contract of the out-of-core path: an engine run
    over a ``store:path=...`` world must be bitwise-indistinguishable from
    the same run over the in-memory world it was written from, whichever
    scheduler backend evaluates it — and the store world must cross process
    boundaries as a path, not as a pickled dataset.
    """
    seed = 5
    world = make_world(f"standard:scale={scale},seed={seed}")
    directory = store_dir or tempfile.mkdtemp(prefix="backend-check-store-")
    from ..io.world_store import WorldStore

    store = WorldStore.write(world.dataset, f"{directory}/world", overwrite=True)
    mapped_world = make_world(f"store:path={directory}/world")
    print(
        f"store: {store.n_users} users / {store.n_points} points "
        f"memmapped from {store.path}"
    )
    failures = 0

    memory_fp = _world_fingerprint(world)
    mapped_fp = _world_fingerprint(mapped_world)
    if memory_fp != mapped_fp:
        print(f"FAIL fingerprint: in-memory {memory_fp} != store header {mapped_fp}")
        failures += 1
    else:
        print("ok   fingerprint: store header matches the in-memory computation")

    world_bytes = len(pickle.dumps(mapped_world))
    dataset_bytes = len(pickle.dumps(world.dataset))
    if world_bytes >= min(2048, dataset_bytes):
        print(
            f"FAIL payload: store world pickles to {world_bytes} bytes "
            f"(in-memory dataset: {dataset_bytes}) — expected path-only pickling"
        )
        failures += 1
    else:
        print(
            f"ok   payload: store world pickles to {world_bytes} bytes "
            f"(in-memory dataset: {dataset_bytes})"
        )

    base = check_spec(scale, seed=seed)
    spec = ExperimentSpec(
        name="backend-check-store",
        mechanisms=base.mechanisms,
        metrics=base.metrics,
        worlds=["check-world"],
        seeds=base.seeds,
    )
    reference = EvaluationEngine(backend=SerialBackend(), cache=False).run(
        spec, worlds={"check-world": world}
    )
    print(f"serial in-memory: {len(reference)} rows")
    checks = [
        ("store+serial", SerialBackend()),
        ("store+multiprocessing", MultiprocessingBackend(workers=workers)),
        ("store+work-queue", WorkQueueBackend(workers=workers, timeout_s=timeout_s)),
    ]
    for label, backend in checks:
        rows = EvaluationEngine(backend=backend, cache=False).run(
            spec, worlds={"check-world": mapped_world}
        )
        failures += not _rows_identical(reference, rows, label)

    print(
        f"{3 - min(failures, 3)}/3 backends matched the in-memory rows "
        "from the memmapped artifact"
    )
    return 1 if failures else 0


def run_stream_check(scale: str) -> int:
    """Batch vs streaming rows: identical for every streaming-capable attack.

    Two specs cover the four incremental attacks: a full-input spec for the
    POI extractors and the zone census (over a standard and a crossing-rich
    world, so the mix-zone path sees real crossings), and a publish-half
    spec for the re-identification pair (the E4 setting).  Both run once
    with ``mode="batch"`` and once with ``mode="stream"``; any differing
    row is a broken bitwise pin in :mod:`repro.streaming`.
    """
    import dataclasses

    seed = 5
    specs = [
        ExperimentSpec(
            name="stream-check-full",
            mechanisms=["identity", "downsampling:factor=5"],
            attacks=[
                "poi-retrieval:algorithm=staypoint",
                "poi-retrieval:algorithm=djcluster",
                "zone-census:radius_m=100",
            ],
            worlds=[
                f"standard:scale={scale},seed={seed}",
                f"crossing:scale={scale},seed={seed}",
            ],
            seeds=[0],
        ),
        ExperimentSpec(
            name="stream-check-reident",
            mechanisms=["identity", "pseudonyms:seed=1"],
            attacks=["reident:train_fraction=0.5"],
            worlds=[f"standard:scale={scale},seed={seed}"],
            seeds=[0],
            input="publish-half:train_fraction=0.5",
        ),
    ]
    failures = 0
    for spec in specs:
        batch = EvaluationEngine(cache=False).run(spec)
        stream = EvaluationEngine(cache=False).run(
            dataclasses.replace(spec, mode="stream")
        )
        print(f"{spec.name}: {len(batch)} batch rows")
        by_attack: Dict[str, List[Dict[str, Any]]] = {}
        for ref, cand in zip(batch, stream):
            by_attack.setdefault(str(ref["attack"]), []).append(ref)
        for attack in by_attack:
            ref_rows = [r for r in batch if str(r["attack"]) == attack]
            cand_rows = [r for r in stream if str(r["attack"]) == attack]
            failures += not _rows_identical(
                ref_rows, cand_rows, f"stream {attack}", baseline="batch"
            )
        if len(batch) != len(stream):
            print(f"FAIL {spec.name}: {len(batch)} batch vs {len(stream)} stream rows")
            failures += 1
    print(
        "streaming tier matched batch bitwise"
        if not failures
        else f"{failures} streaming attack(s) diverged from batch"
    )
    return 1 if failures else 0


def run_cache_check(scale: str, cache_file: str, expect: str) -> int:
    spec = check_spec(scale)
    engine = EvaluationEngine(cache=f"sqlite:path={cache_file}")
    rows = engine.run(spec)
    total = engine.cache_hits + engine.cache_misses
    print(
        f"{expect} run: {len(rows)} rows, {engine.cache_hits} hits / "
        f"{engine.cache_misses} misses against {cache_file}"
    )
    if expect == "cold" and engine.cache_hits != 0:
        print(f"FAIL: cold run expected 0 hits, got {engine.cache_hits}")
        return 1
    if expect == "warm" and (engine.cache_misses != 0 or engine.cache_hits != total):
        print(
            f"FAIL: warm run expected 100% hits, got {engine.cache_hits}/{total} "
            f"({engine.cache_misses} misses) — the persistent cell cache missed"
        )
        return 1
    print(f"ok   {expect} run matched the expected hit pattern")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="mode", required=True)

    equivalence = subparsers.add_parser(
        "equivalence", help="identical rows under serial/multiprocessing/work-queue"
    )
    equivalence.add_argument("--scale", default="tiny", help="workload scale (default tiny)")
    equivalence.add_argument("--workers", type=int, default=2)
    equivalence.add_argument("--timeout-s", type=float, default=300.0)

    cache = subparsers.add_parser(
        "cache", help="cold→warm persistence against one SqliteCellCache file"
    )
    cache.add_argument("--scale", default="tiny")
    cache.add_argument("--cache-file", required=True)
    cache.add_argument("--expect", choices=("cold", "warm"), required=True)

    stream = subparsers.add_parser(
        "stream", help="batch vs streaming rows identical for every streaming attack"
    )
    stream.add_argument("--scale", default="small", help="workload scale (default small)")

    store = subparsers.add_parser(
        "store", help="in-memory vs memmap-backed world rows identical under every backend"
    )
    store.add_argument("--scale", default="tiny", help="workload scale (default tiny)")
    store.add_argument("--workers", type=int, default=2)
    store.add_argument("--timeout-s", type=float, default=300.0)
    store.add_argument(
        "--store-dir", default=None, help="write the artifact here (default: a tempdir)"
    )

    args = parser.parse_args(argv)
    if args.mode == "equivalence":
        return run_equivalence(args.scale, args.workers, args.timeout_s)
    if args.mode == "stream":
        return run_stream_check(args.scale)
    if args.mode == "store":
        return run_store_check(args.scale, args.workers, args.timeout_s, args.store_dir)
    return run_cache_check(args.scale, args.cache_file, args.expect)


if __name__ == "__main__":
    sys.exit(main())
