"""Declarative experiment specification and the evaluation engine.

An :class:`ExperimentSpec` names *what* to evaluate — the cross product of
mechanisms x attacks x metric groups x worlds x seeds, every component given
as a registry spec string — and the :class:`EvaluationEngine` decides *how*:
sequentially or with :mod:`multiprocessing` fan-out, publishing each
(world, seed, mechanism) combination exactly once per run and caching
finished result cells across runs.

Every experiment of the reproduction (the ``run_*`` functions in
:mod:`repro.experiments.runner`) is a thin spec executed by this engine::

    spec = ExperimentSpec(
        name="poi-retrieval",
        mechanisms=["identity", "promesse", "geo-ind:epsilon_per_m=0.005"],
        attacks=["poi-retrieval:algorithm=staypoint"],
        worlds=["standard:scale=small,seed=42"],
        seeds=[0, 1, 2],
    )
    rows = EvaluationEngine(workers=4).run(spec)

Each cell yields one row ``{"world", "seed", "mechanism", "attack",
**attack columns, **metric columns}``; rows come back in deterministic
cross-product order regardless of worker scheduling.

Axis entries may also be ``(label, item)`` pairs — and mechanism items may be
live mechanism *objects*, which keeps the legacy ``run_*(world, {"name":
mechanism})`` call sites working — but only string specs are picklable and
cacheable, so object cells always run in-process and uncached.

A reserved ``prefix`` parameter namespaces a component's columns
(``"area-coverage:cell_size_m=200,prefix=cov_"`` -> ``cov_f_score``), which
is how one row can merge several components that would otherwise collide.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..api.adapters import publish_result
from ..api.registry import (
    ATTACKS,
    METRICS,
    RegistryError,
    make_mechanism,
    parse_spec,
)
from ..api.result import PublicationResult
from ..core.trajectory import MobilityDataset
from .backends import SchedulerBackend, make_backend
from .cache import CellCacheStore, make_cache_store, serialize_cell_key
from .workloads import split_train_publish

# World resolution lives in the registry module; re-exported here because the
# engine is where world specs are consumed (and for backward compatibility).
from .worlds import WORLDS, make_world, register_world

__all__ = [
    "ExperimentSpec",
    "EvaluationEngine",
    "EvalContext",
    "WORLDS",
    "make_world",
    "register_world",
]


# ---------------------------------------------------------------------------
# Experiment specification
# ---------------------------------------------------------------------------

#: An axis entry: a spec string, or an explicit (label, spec-or-object) pair.
AxisEntry = Union[str, Tuple[str, Any]]


def _normalize_axis(entries: Sequence[AxisEntry], kind: str) -> List[Tuple[str, Any]]:
    normalized: List[Tuple[str, Any]] = []
    for entry in entries:
        if isinstance(entry, tuple):
            label, item = entry
            normalized.append((str(label), item))
        elif isinstance(entry, str):
            normalized.append((entry, entry))
        elif entry is None and kind == "attack":
            normalized.append(("", None))
        else:
            normalized.append((getattr(entry, "name", type(entry).__name__), entry))
    return normalized


def _normalize_metric_groups(
    metrics: Sequence[Union[str, Sequence[str]]]
) -> List[Tuple[str, ...]]:
    groups: List[Tuple[str, ...]] = []
    for group in metrics:
        if isinstance(group, str):
            groups.append((group,))
        else:
            groups.append(tuple(group))
    return groups or [()]


@dataclass
class ExperimentSpec:
    """The declarative cross product one engine run evaluates.

    Attributes
    ----------
    name:
        Experiment identifier (used in logs and cache partitioning).
    mechanisms:
        Mechanism axis: spec strings, ``(label, spec)`` pairs, or
        ``(label, mechanism object)`` pairs.
    attacks:
        Attack axis: evaluator specs (``poi-retrieval:...``) or ``None`` for
        attack-free cells.  Defaults to one attack-free entry.
    metrics:
        Metric axis: each entry is one *group* — a spec or tuple of specs
        whose columns merge into the same row.  Groups multiply the cross
        product; specs inside a group do not.
    worlds:
        Workload axis: world specs (see :data:`WORLDS`) or names resolved
        through the ``worlds`` mapping passed to :meth:`EvaluationEngine.run`.
    seeds:
        Seed axis; each seed is injected into mechanism factories that
        declare a ``seed`` parameter (explicit spec params win).
    input:
        What each mechanism publishes: ``"full"`` (the world's dataset) or
        ``"publish-half:train_fraction=0.5"`` (the second temporal half, the
        re-identification setting where the first half is attacker
        knowledge).
    mode:
        How attack evaluators consume the publication: ``"batch"`` (default;
        the vectorized attacks over the finished dataset) or ``"stream"``
        (the publication is replayed point by point through
        :mod:`repro.streaming`'s incremental attacks, whose output is pinned
        bitwise-identical to batch).  Evaluators opt in by declaring an
        ``execution`` parameter; others run batch either way.
    """

    name: str
    mechanisms: Sequence[AxisEntry]
    attacks: Sequence[Optional[AxisEntry]] = (None,)
    metrics: Sequence[Union[str, Sequence[str]]] = ()
    worlds: Sequence[AxisEntry] = ("standard:scale=small,seed=42",)
    seeds: Sequence[int] = (0,)
    input: str = "full"
    mode: str = "batch"

    def cells(self) -> List[Dict[str, Any]]:
        """The ordered cross product as flat cell descriptors."""
        mechanisms = _normalize_axis(self.mechanisms, "mechanism")
        attacks = _normalize_axis(self.attacks, "attack")
        groups = _normalize_metric_groups(self.metrics)
        worlds = _normalize_axis(self.worlds, "world")
        cells: List[Dict[str, Any]] = []
        index = 0
        for world_label, world_item in worlds:
            for seed in self.seeds:
                for mech_index, (mech_label, mech_item) in enumerate(mechanisms):
                    for attack_label, attack_item in attacks:
                        for group in groups:
                            cells.append(
                                {
                                    "index": index,
                                    "world_label": world_label,
                                    "world_item": world_item,
                                    "seed": seed,
                                    "mech_index": mech_index,
                                    "mech_label": mech_label,
                                    "mech_item": mech_item,
                                    "attack_label": attack_label,
                                    "attack_item": attack_item,
                                    "metric_group": group,
                                }
                            )
                            index += 1
        return cells


# ---------------------------------------------------------------------------
# Cell evaluation (worker side)
# ---------------------------------------------------------------------------


@dataclass
class EvalContext:
    """What attacks receive next to the publication: the cell's inputs."""

    world: Any
    world_key: str
    input_dataset: MobilityDataset
    seed: int


def _resolve_input(world: Any, input_spec: str) -> MobilityDataset:
    name, params = parse_spec(input_spec)
    if name in ("full", "dataset"):
        return world.dataset
    if name == "publish-half":
        return split_train_publish(world, params.get("train_fraction", 0.5))[1]
    if name == "train-half":
        return split_train_publish(world, params.get("train_fraction", 0.5))[0]
    raise RegistryError(
        f"unknown input {input_spec!r}; choose 'full', 'publish-half' or 'train-half'"
    )


def _pop_prefix(spec: str) -> Tuple[str, Dict[str, Any], str]:
    name, params = parse_spec(spec)
    prefix = str(params.pop("prefix", ""))
    return name, params, prefix


def _apply_prefix(columns: Mapping[str, Any], prefix: str) -> Dict[str, Any]:
    if not prefix:
        return dict(columns)
    return {prefix + key: value for key, value in columns.items()}


def _publish_for_group(
    mech_item: Any, mech_label: str, input_dataset: MobilityDataset, seed: int
) -> PublicationResult:
    if isinstance(mech_item, str):
        mechanism = make_mechanism(mech_item, defaults={"seed": seed})
        return mechanism.publish(input_dataset)
    return publish_result(mech_item, input_dataset, label=mech_label)


#: Attack names already warned about falling back from stream to batch mode
#: (per process: worker fan-out re-warns at most once per worker).
_STREAM_FALLBACK_WARNED: Set[str] = set()


def _note_stream_fallback(name: str) -> None:
    """Warn (once per attack name) that a stream-mode cell runs batch."""
    if name in _STREAM_FALLBACK_WARNED:
        return
    _STREAM_FALLBACK_WARNED.add(name)
    warnings.warn(
        f"attack {name!r} does not declare an 'execution' parameter, so "
        "ExperimentSpec(mode='stream') runs it in batch mode; its rows "
        "carry stream_fallback=True",
        RuntimeWarning,
        stacklevel=3,
    )


def _evaluate_group(payload: Tuple) -> List[Tuple[int, Dict[str, Any]]]:
    """Evaluate every cell sharing one (world, seed, mechanism) publication.

    Module-level so worker processes can unpickle it; all component
    construction happens here, inside the worker, from spec strings.
    """
    (world, world_label, input_spec, seed, mech_label, mech_item, cell_args, mode) = payload
    input_dataset = _resolve_input(world, input_spec)
    result = _publish_for_group(mech_item, mech_label, input_dataset, seed)
    context = EvalContext(
        world=world, world_key=world_label, input_dataset=input_dataset, seed=seed
    )
    # Streaming mode is injected only into evaluators that declare an
    # ``execution`` parameter; explicit spec params win, others run batch.
    attack_defaults = {"execution": "stream"} if mode == "stream" else None

    out: List[Tuple[int, Dict[str, Any]]] = []
    for index, attack_label, attack_item, metric_group in cell_args:
        columns: Dict[str, Any] = {}
        stream_fallback = False
        if attack_item is not None:
            if isinstance(attack_item, str):
                name, params, prefix = _pop_prefix(attack_item)
                if (
                    attack_defaults is not None
                    and "execution" not in params
                    and not ATTACKS.declares(name, "execution")
                ):
                    stream_fallback = True
                    _note_stream_fallback(name)
                attack = ATTACKS.create_parsed(name, params, defaults=attack_defaults)
            else:
                attack, prefix = attack_item, ""
            run = getattr(attack, "run", None)
            if run is None:
                raise RegistryError(
                    f"attack {attack_label!r} has no run(result, context) method; "
                    "only evaluator attacks (e.g. 'poi-retrieval', 'reident', "
                    "'tracking', 'zone-census') can sit on the attack axis"
                )
            columns.update(_apply_prefix(run(result, context), prefix))
        for metric_spec in metric_group:
            name, params, prefix = _pop_prefix(metric_spec)
            metric = METRICS.create_parsed(name, params)
            columns.update(_apply_prefix(metric(input_dataset, result), prefix))
        row: Dict[str, Any] = {
            "world": world_label,
            "seed": seed,
            "mechanism": mech_label,
            "attack": attack_label or None,
        }
        if stream_fallback:
            # Row provenance: this cell was requested in stream mode but the
            # evaluator is not streaming-capable, so batch numbers follow.
            row["stream_fallback"] = True
        row.update(columns)
        out.append((index, row))
    return out


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def _world_fingerprint(world: Any) -> Tuple:
    """A content fingerprint strong enough to key cached rows by.

    Shape alone (user/point counts, time span) is not enough — two worlds
    differing only in coordinates would alias — so a CRC over a sample of
    the coordinate arrays is included.  Delegates to
    :meth:`~repro.core.trajectory.MobilityDataset.content_fingerprint`,
    which caches the tuple on the dataset after the first computation (and
    reads it from the artifact header for store-backed worlds), so repeated
    ``run`` calls on the same world never re-hash its points; the legacy
    inline arithmetic is kept for duck-typed datasets without the method.
    """
    dataset = world.dataset
    fingerprint = getattr(dataset, "content_fingerprint", None)
    if fingerprint is not None:
        return fingerprint()
    columnar = dataset.columnar()  # shared read-only views: no copies
    lats, lons = columnar.lats, columnar.lons
    stride = max(1, lats.size // 1024)
    checksum = zlib.crc32(lats[::stride].tobytes())
    checksum = zlib.crc32(lons[::stride].tobytes(), checksum)
    return (len(dataset), dataset.n_points, dataset.time_span, checksum)


class EvaluationEngine:
    """Executes :class:`ExperimentSpec` cross products, optionally in parallel.

    Parameters
    ----------
    workers:
        Number of processes.  ``1`` (default) evaluates in-process;
        ``workers > 1`` fans (world, seed, mechanism) groups out over a
        :mod:`multiprocessing` pool (unless ``backend`` overrides the
        scheduler).  Exceptions propagate either way.
    cache:
        Where finished cells live across :meth:`run` calls: ``True`` (an
        in-memory store, the default), ``False`` (off), a spec string
        (``"sqlite:path=cells.sqlite"`` persists cells across processes and
        CI steps), or a :class:`~repro.experiments.cache.CellCacheStore`.
        Cells are keyed by (experiment input, world fingerprint, seed,
        mechanism spec, attack spec, metric group), so re-running a spec —
        or a spec sharing cells with an earlier one — only computes what is
        new.  Cells whose mechanism is a live object are never cached.
    backend:
        *How* uncached cell groups execute: ``None`` (serial for
        ``workers=1``, a multiprocessing pool otherwise), a spec string
        (``"serial"``, ``"multiprocessing:workers=4"``,
        ``"work-queue:workers=4"``), or a
        :class:`~repro.experiments.backends.SchedulerBackend`.  Rows come
        back bitwise-identical in deterministic cross-product order
        regardless of backend.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[bool, str, CellCacheStore] = True,
        backend: Union[None, str, SchedulerBackend] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.backend = make_backend(backend, default_workers=workers)
        self.cache_store = make_cache_store(cache)
        self.cache_enabled = self.cache_store.enabled
        self.cache_hits = 0
        self.cache_misses = 0

    # -- world resolution -----------------------------------------------------------

    @staticmethod
    def _resolve_worlds(
        spec: ExperimentSpec, worlds: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        resolved: Dict[str, Any] = {}
        for label, item in _normalize_axis(spec.worlds, "world"):
            if worlds and label in worlds:
                resolved[label] = worlds[label]
            elif not isinstance(item, str):
                resolved[label] = item
            else:
                resolved[label] = make_world(item)
        return resolved

    # -- cache ----------------------------------------------------------------------

    def _cell_key(
        self, spec: ExperimentSpec, fingerprint: Tuple, cell: Dict[str, Any]
    ) -> Optional[Tuple]:
        if not self.cache_enabled or not isinstance(cell["mech_item"], str):
            return None
        attack_item = cell["attack_item"]
        if attack_item is not None and not isinstance(attack_item, str):
            return None
        return (
            spec.input,
            spec.mode,
            cell["world_label"],
            fingerprint,
            cell["seed"],
            cell["mech_label"],
            cell["mech_item"],
            cell["attack_label"],
            attack_item,
            cell["metric_group"],
        )

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        worlds: Optional[Mapping[str, Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Evaluate the spec and return one row per cell, in cell order.

        ``worlds`` maps world-axis labels to pre-built
        :class:`~repro.datagen.mobility.SyntheticWorld` objects; labels not
        in the mapping are built from their spec via :func:`make_world`.
        """
        if spec.mode not in ("batch", "stream"):
            raise RegistryError(
                f"unknown mode {spec.mode!r}; choose 'batch' or 'stream'"
            )
        cells = spec.cells()
        world_objects = self._resolve_worlds(spec, worlds)
        fingerprints = (
            {label: _world_fingerprint(world) for label, world in world_objects.items()}
            if self.cache_enabled
            else {label: () for label in world_objects}
        )
        rows: List[Optional[Dict[str, Any]]] = [None] * len(cells)

        # Serve cached cells, group the rest by (world, seed, mechanism).
        groups: Dict[Tuple, Dict[str, Any]] = {}
        pending_keys: Dict[int, Optional[Tuple]] = {}
        for cell in cells:
            world = world_objects[cell["world_label"]]
            key = self._cell_key(spec, fingerprints[cell["world_label"]], cell)
            if key is not None:
                cached = self.cache_store.get(key)
                if cached is not None:
                    rows[cell["index"]] = cached
                    self.cache_hits += 1
                    continue
            self.cache_misses += 1
            pending_keys[cell["index"]] = key
            group_key = (cell["world_label"], cell["seed"], cell["mech_index"])
            group = groups.setdefault(
                group_key,
                {
                    "world": world,
                    "world_label": cell["world_label"],
                    "seed": cell["seed"],
                    "mech_label": cell["mech_label"],
                    "mech_item": cell["mech_item"],
                    "cells": [],
                },
            )
            group["cells"].append(
                (
                    cell["index"],
                    cell["attack_label"],
                    cell["attack_item"],
                    cell["metric_group"],
                )
            )

        payloads = [
            (
                group["world"],
                group["world_label"],
                spec.input,
                group["seed"],
                group["mech_label"],
                group["mech_item"],
                group["cells"],
                spec.mode,
            )
            for group in groups.values()
        ]

        if payloads:
            # Cells whose mechanism or attack is a live object cannot cross a
            # process boundary: they run inline regardless of the backend.
            parallel: List[Tuple] = []
            inline: List[Tuple] = []
            for payload in payloads:
                mech_ok = isinstance(payload[5], str)
                attacks_ok = all(
                    attack_item is None or isinstance(attack_item, str)
                    for _, _, attack_item, _ in payload[6]
                )
                (parallel if mech_ok and attacks_ok else inline).append(payload)
            # Hand the backend each parallel cell's serialized cache key (or
            # None for uncacheable cells) plus the store: a fleet backend
            # whose workers share the sqlite file writes rows directly into
            # it and ships only acks back.  In-process backends ignore both.
            parallel_keys: List[Optional[List[Optional[str]]]] = []
            for payload in parallel:
                keys: List[Optional[str]] = []
                for index, _, _, _ in payload[6]:
                    key = pending_keys.get(index)
                    keys.append(serialize_cell_key(key) if key is not None else None)
                parallel_keys.append(keys)
            results = (
                list(
                    self.backend.map_groups(
                        parallel, cell_keys=parallel_keys, cache=self.cache_store
                    )
                )
                if parallel
                else []
            )
            results.extend(_evaluate_group(p) for p in inline)
            for group_rows in results:
                for index, row in group_rows:
                    rows[index] = row
                    key = pending_keys.get(index)
                    if key is not None:
                        self.cache_store.put(key, row)

        return [row for row in rows if row is not None]

    def clear_cache(self) -> None:
        """Drop all cached cells (and reset the hit/miss counters)."""
        self.cache_store.clear()
        self.cache_hits = 0
        self.cache_misses = 0
