"""Cell-cache stores: where the evaluation engine keeps finished rows.

The :class:`~repro.experiments.engine.EvaluationEngine` caches each finished
cell under a key built from the cell's spec strings and the world's content
fingerprint (see ``EvaluationEngine._cell_key``).  This module abstracts
*where* those rows live:

* :class:`InMemoryCellCache` — a per-engine dict, the historical behaviour;
  rows survive across :meth:`run` calls of one engine instance.
* :class:`SqliteCellCache` — a single-file persistent store, safe under
  concurrent writers, so engine runs in different *processes* (a cold CI step
  and a warm one, a sweep resumed tomorrow, parallel experiment shards
  pointed at one file) reuse each other's finished cells.
* :class:`NullCellCache` — caching disabled (``EvaluationEngine(cache=False)``).

Keys are plain tuples of strings, ints, floats and nested tuples.  For the
persistent store they are serialized by :func:`serialize_cell_key` into a
canonical text form that is **deterministic across processes and interpreter
runs** — a silently changed serialization would turn a warm cache file into a
silent always-miss, which is why the format is versioned (``v1:`` prefix) and
pinned by regression tests.

Stores are selectable by spec string wherever the engine is constructed::

    EvaluationEngine(cache="sqlite:path=/tmp/cells.sqlite")
    EvaluationEngine(cache="memory")
    EvaluationEngine(cache=False)
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CellCacheStore",
    "NullCellCache",
    "InMemoryCellCache",
    "SqliteCellCache",
    "serialize_cell_key",
    "make_cache_store",
    "CELL_KEY_FORMAT_VERSION",
]


#: Version prefix of the serialized key format.  Bump when the canonical
#: encoding (not the key *contents*, which the engine owns) changes shape, so
#: an old cache file misses cleanly instead of aliasing.  v2: the engine's
#: key tuple gained the experiment ``mode`` (batch vs stream) component.
CELL_KEY_FORMAT_VERSION = 2


def _canonical(value: Any) -> str:
    """A deterministic text encoding for cell-key components.

    Strings are JSON-escaped (so commas and brackets inside spec strings can
    never collide with the structure), floats use ``repr`` (shortest
    round-tripping form, stable across CPython versions >= 3.1), and numpy
    scalars are normalized to their Python equivalents so a key built from a
    ``np.int64`` point count equals one built from a plain ``int``.
    """
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, str):
        return json.dumps(value, ensure_ascii=True)
    if isinstance(value, int):
        # int() also strips numpy integer subclasses to a canonical form.
        return str(int(value))
    if isinstance(value, float):
        # float() first: np.float64 subclasses float but reprs differently.
        return repr(float(value))
    # Numpy scalars (np.int64 counts, np.float64 time spans) without a hard
    # numpy dependency in the store itself.
    item = getattr(value, "item", None)
    if callable(item):
        return _canonical(item())
    raise TypeError(
        f"cell keys may only contain str/int/float/bool/None/tuples, "
        f"got {type(value).__name__}: {value!r}"
    )


def serialize_cell_key(key: Tuple) -> str:
    """The canonical, process-stable text form of an engine cell key."""
    return f"v{CELL_KEY_FORMAT_VERSION}:" + _canonical(key)


class CellCacheStore:
    """Where finished cell rows live; keyed by the engine's cell-key tuples.

    ``get`` returns a *fresh* row dict (or ``None`` on a miss) and ``put``
    must not keep a live reference to the caller's dict — the engine hands
    rows out to callers who may mutate them.
    """

    #: Whether the engine should compute cache keys at all.
    enabled: bool = True

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(self, key: Tuple, row: Dict[str, Any]) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class NullCellCache(CellCacheStore):
    """Caching disabled: every lookup misses, nothing is stored."""

    enabled = False

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        return None

    def put(self, key: Tuple, row: Dict[str, Any]) -> None:
        pass

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class InMemoryCellCache(CellCacheStore):
    """The historical per-engine dict store (rows live for the process)."""

    def __init__(self) -> None:
        self._rows: Dict[str, Dict[str, Any]] = {}

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        row = self._rows.get(serialize_cell_key(key))
        return dict(row) if row is not None else None

    def put(self, key: Tuple, row: Dict[str, Any]) -> None:
        self._rows[serialize_cell_key(key)] = dict(row)

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)


class SqliteCellCache(CellCacheStore):
    """A persistent single-file store shared across processes and CI steps.

    Keys are stored as their :func:`serialize_cell_key` text; rows are
    pickled, which round-trips numpy scalars and non-finite floats *bitwise*
    (JSON would not).  Writes are single-statement ``INSERT OR REPLACE``
    transactions under WAL journaling with a busy timeout, so concurrent
    engine processes appending to one file never corrupt it — at worst a
    cell computed twice is written twice with identical content.

    Connections are opened lazily per (pid, thread) so a store created
    before a ``fork`` (e.g. held by an engine whose backend forks workers)
    never shares a sqlite handle across processes.
    """

    def __init__(self, path: str, timeout_s: float = 30.0) -> None:
        self.path = os.fspath(path)
        self.timeout_s = float(timeout_s)
        self._connections: Dict[Tuple[int, int], sqlite3.Connection] = {}
        self._lock = threading.Lock()

    def _connection(self) -> sqlite3.Connection:
        key = (os.getpid(), threading.get_ident())
        connection = self._connections.get(key)
        if connection is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            connection = sqlite3.connect(self.path, timeout=self.timeout_s)
            try:
                connection.execute("PRAGMA journal_mode=WAL")
            except sqlite3.OperationalError:
                pass  # e.g. filesystems without WAL support; rollback journal is fine
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS cells ("
                "key TEXT PRIMARY KEY, row BLOB NOT NULL)"
            )
            connection.commit()
            with self._lock:
                # Drop handles that belong to other processes/threads (after
                # a fork they must never be used from here).
                self._connections = {
                    k: c for k, c in self._connections.items() if k[0] == key[0]
                }
                self._connections[key] = connection
        return connection

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        return self.get_serialized(serialize_cell_key(key))

    def put(self, key: Tuple, row: Dict[str, Any]) -> None:
        self.put_serialized(serialize_cell_key(key), row)

    def get_serialized(self, key_text: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get`, keyed by an already-serialized key text.

        The fleet path serializes keys once on the coordinator and ships the
        text to workers; both sides then address the same rows without ever
        re-deriving the tuple.
        """
        cursor = self._connection().execute(
            "SELECT row FROM cells WHERE key = ?", (key_text,)
        )
        hit = cursor.fetchone()
        return pickle.loads(hit[0]) if hit is not None else None

    def put_serialized(self, key_text: str, row: Dict[str, Any]) -> None:
        """Like :meth:`put`, keyed by an already-serialized key text."""
        connection = self._connection()
        connection.execute(
            "INSERT OR REPLACE INTO cells (key, row) VALUES (?, ?)",
            (
                key_text,
                pickle.dumps(dict(row), protocol=pickle.HIGHEST_PROTOCOL),
            ),
        )
        connection.commit()

    def clear(self) -> None:
        connection = self._connection()
        connection.execute("DELETE FROM cells")
        connection.commit()

    def __len__(self) -> int:
        cursor = self._connection().execute("SELECT COUNT(*) FROM cells")
        return int(cursor.fetchone()[0])

    def close(self) -> None:
        """Close this process's connections (the file remains valid)."""
        key_pid = os.getpid()
        with self._lock:
            for key, connection in list(self._connections.items()):
                if key[0] == key_pid:
                    connection.close()
                    del self._connections[key]

    def __repr__(self) -> str:
        return f"SqliteCellCache(path={self.path!r})"


def make_cache_store(cache: Any) -> CellCacheStore:
    """Resolve the engine's ``cache`` argument to a store instance.

    Accepts a :class:`CellCacheStore`, a bool (the legacy on/off switch), or
    a spec string: ``"memory"``, ``"off"``/``"none"``, or
    ``"sqlite:path=cells.sqlite"``.
    """
    if isinstance(cache, CellCacheStore):
        return cache
    if cache is True or cache is None:
        return InMemoryCellCache()
    if cache is False:
        return NullCellCache()
    if isinstance(cache, str):
        from ..api.registry import RegistryError, parse_spec

        name, params = parse_spec(cache)
        name = name.lower()
        if name in ("memory", "in-memory", "dict"):
            return InMemoryCellCache()
        if name in ("off", "none", "null", "disabled"):
            return NullCellCache()
        if name == "sqlite":
            path = params.get("path", "")
            if not path:
                raise RegistryError(
                    "the sqlite cell cache needs a file: 'sqlite:path=cells.sqlite'"
                )
            return SqliteCellCache(str(path), timeout_s=params.get("timeout_s", 30.0))
        raise RegistryError(
            f"unknown cell cache {cache!r}; choose 'memory', 'off' or "
            "'sqlite:path=FILE'"
        )
    raise TypeError(
        f"cache must be a CellCacheStore, bool or spec string, got {type(cache).__name__}"
    )
