"""Experiment runners: the logic behind every benchmark of EXPERIMENTS.md.

Each ``run_*`` function takes a workload (usually a
:class:`~repro.datagen.mobility.SyntheticWorld`) plus the parameters of one
experiment of DESIGN.md, runs the mechanisms and attacks, and returns plain
rows (lists of dictionaries) ready to be formatted with
:mod:`repro.experiments.formatting`.  Benchmarks stay thin: they build the
workload, call the runner inside ``benchmark(...)`` and print the rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..attacks.djcluster import DjCluster, DjClusterConfig
from ..attacks.poi_extraction import PoiExtractionConfig, PoiExtractor
from ..attacks.reident import FootprintReidentifier, ReidentificationConfig, Reidentifier
from ..attacks.tracking import MultiTargetTracker, TrackingConfig
from ..baselines.base import PublicationMechanism
from ..baselines.geo_indistinguishability import GeoIndConfig, GeoIndistinguishabilityMechanism
from ..baselines.paper import FullPipelineMechanism, SpeedSmoothingMechanism
from ..baselines.trivial import DownsamplingMechanism, IdentityMechanism, PseudonymizationMechanism
from ..baselines.wait4me import Wait4MeConfig, Wait4MeMechanism
from ..core.pipeline import AnonymizerConfig
from ..core.speed_smoothing import SpeedSmoothingConfig
from ..core.trajectory import MobilityDataset
from ..datagen.mobility import SyntheticWorld
from ..metrics.privacy import (
    empirical_mixing_entropy_bits,
    majority_owner,
    poi_retrieval_pooled,
    tracking_success,
)
from ..metrics.utility import (
    area_coverage,
    dataset_spatial_distortion,
    point_retention,
    range_query_distortion,
    trip_length_error,
)
from ..mixzones.detection import MixZoneDetectionConfig
from ..mixzones.swapping import SwapConfig, SwapPolicy
from .workloads import split_train_publish

__all__ = [
    "default_mechanisms",
    "ground_truth_pois",
    "run_poi_retrieval",
    "run_spatial_distortion",
    "run_area_coverage",
    "run_reidentification",
    "run_tracking",
    "run_tradeoff_frontier",
    "run_mixzone_stats",
]


# ---------------------------------------------------------------------------
# Mechanism suites and ground truth
# ---------------------------------------------------------------------------


def default_mechanisms(seed: int = 0) -> Dict[str, PublicationMechanism]:
    """The standard comparison suite used by E1-E3 and E6.

    Includes the raw-publication anchor, the paper's smoothing at two spacing
    values, the full pipeline, Geo-Indistinguishability at two privacy levels,
    Wait-For-Me, and naive down-sampling.
    """
    return {
        "raw": IdentityMechanism(),
        "smoothing-eps100": SpeedSmoothingMechanism(SpeedSmoothingConfig(epsilon_m=100.0)),
        "smoothing-eps200": SpeedSmoothingMechanism(SpeedSmoothingConfig(epsilon_m=200.0)),
        "paper-full": FullPipelineMechanism(
            AnonymizerConfig(swapping=SwapConfig(policy=SwapPolicy.COIN_FLIP, seed=seed))
        ),
        "geo-ind-strong": GeoIndistinguishabilityMechanism(
            GeoIndConfig(epsilon_per_m=math.log(2.0) / 200.0, seed=seed)
        ),
        "geo-ind-weak": GeoIndistinguishabilityMechanism(
            GeoIndConfig(epsilon_per_m=math.log(10.0) / 200.0, seed=seed)
        ),
        "wait4me-k4-d500": Wait4MeMechanism(Wait4MeConfig(k=4, delta_m=500.0, seed=seed)),
        "downsample-x10": DownsamplingMechanism(factor=10),
    }


def ground_truth_pois(world: SyntheticWorld, min_stay_s: float = 900.0) -> List[Tuple[float, float]]:
    """Distinct ground-truth POI locations visited long enough to be attackable."""
    seen: Dict[str, Tuple[float, float]] = {}
    for user_id in world.user_ids:
        for poi in world.true_pois_of(user_id, min_stay_s=min_stay_s):
            seen[poi.poi_id] = (poi.lat, poi.lon)
    return list(seen.values())


# ---------------------------------------------------------------------------
# E1 — POI retrieval
# ---------------------------------------------------------------------------


def run_poi_retrieval(
    world: SyntheticWorld,
    mechanisms: Optional[Mapping[str, PublicationMechanism]] = None,
    attack: str = "staypoint",
    match_distance_m: float = 250.0,
    min_stay_s: float = 900.0,
    adaptive_attacker: bool = True,
) -> List[Dict[str, object]]:
    """Experiment E1: POI retrieval precision / recall / F-score per mechanism.

    ``attack`` selects the extraction algorithm (``"staypoint"`` or
    ``"djcluster"``).  POIs are pooled across users before scoring because
    published identifiers may be pseudonymous or swapped.

    When ``adaptive_attacker`` is true (default), the attack parameters are
    scaled to each mechanism's public noise level: a Geo-Indistinguishability
    release announces its ``epsilon``, so a realistic attacker widens the
    clustering diameter to a few times the expected noise radius before
    searching for stays — this is how Primault et al. (MOST'14) showed that
    the mechanism leaves the majority of POIs recoverable.  Non-noising
    mechanisms are attacked with the standard parameters.
    """
    mechanisms = mechanisms or default_mechanisms()
    truth = ground_truth_pois(world, min_stay_s=min_stay_s)

    rows: List[Dict[str, object]] = []
    for name, mechanism in mechanisms.items():
        published = mechanism.publish(world.dataset)
        diameter = _attack_diameter(mechanism) if adaptive_attacker else 200.0
        extractor = _build_extractor(attack, min_stay_s, diameter)
        extracted = [poi for pois in extractor(published).values() for poi in pois]
        score = poi_retrieval_pooled(truth, extracted, match_distance_m=match_distance_m)
        rows.append(
            {
                "mechanism": name,
                "attack": attack,
                "precision": score.precision,
                "recall": score.recall,
                "f_score": score.f_score,
                "n_true_pois": score.n_true,
                "n_extracted": score.n_extracted,
            }
        )
    return rows


def _attack_diameter(mechanism: PublicationMechanism, base_m: float = 200.0) -> float:
    """Clustering diameter an informed attacker would use against ``mechanism``.

    The planar Laplace noise of Geo-Indistinguishability has mean radius
    ``2 / epsilon``; two independently noised reports of the same place are on
    average about twice that apart, so the attacker clusters with a diameter of
    the standard value plus four expected noise radii.
    """
    if isinstance(mechanism, GeoIndistinguishabilityMechanism):
        noise_radius = 2.0 / mechanism.config.epsilon_per_m
        return base_m + 4.0 * noise_radius
    return base_m


def _build_extractor(
    attack: str, min_stay_s: float, max_diameter_m: float = 200.0
) -> Callable[[MobilityDataset], Dict[str, list]]:
    if attack == "staypoint":
        extractor = PoiExtractor(
            PoiExtractionConfig(
                min_duration_s=min_stay_s,
                max_diameter_m=max_diameter_m,
                merge_distance_m=max_diameter_m / 2.0,
            )
        )
        return extractor.extract_dataset
    if attack == "djcluster":
        clusterer = DjCluster(DjClusterConfig(eps_m=max(100.0, max_diameter_m / 2.0)))
        return clusterer.extract_dataset
    raise ValueError(f"unknown attack {attack!r}; choose 'staypoint' or 'djcluster'")


# ---------------------------------------------------------------------------
# E2 — spatial distortion
# ---------------------------------------------------------------------------


def run_spatial_distortion(
    world: SyntheticWorld,
    mechanisms: Optional[Mapping[str, PublicationMechanism]] = None,
) -> List[Dict[str, object]]:
    """Experiment E2: spatial distortion and point retention per mechanism."""
    mechanisms = mechanisms or default_mechanisms()
    rows: List[Dict[str, object]] = []
    for name, mechanism in mechanisms.items():
        published = mechanism.publish(world.dataset)
        summary = dataset_spatial_distortion(world.dataset, published, match_by_user=False)
        rows.append(
            {
                "mechanism": name,
                "mean_m": summary.mean,
                "median_m": summary.median,
                "p95_m": summary.p95,
                "max_m": summary.max,
                "point_retention": point_retention(world.dataset, published),
                "trip_length_error": trip_length_error(world.dataset, published),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 — area coverage
# ---------------------------------------------------------------------------


def run_area_coverage(
    world: SyntheticWorld,
    mechanisms: Optional[Mapping[str, PublicationMechanism]] = None,
    cell_sizes_m: Sequence[float] = (100.0, 200.0, 400.0, 800.0),
) -> List[Dict[str, object]]:
    """Experiment E3: cell-cover F-score per mechanism and cell size."""
    mechanisms = mechanisms or default_mechanisms()
    rows: List[Dict[str, object]] = []
    for name, mechanism in mechanisms.items():
        published = mechanism.publish(world.dataset)
        for cell_size in cell_sizes_m:
            score = area_coverage(world.dataset, published, cell_size_m=cell_size)
            rows.append(
                {
                    "mechanism": name,
                    "cell_size_m": cell_size,
                    "precision": score.precision,
                    "recall": score.recall,
                    "f_score": score.f_score,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E4 — re-identification
# ---------------------------------------------------------------------------


def run_reidentification(
    world: SyntheticWorld,
    train_fraction: float = 0.5,
    match_distance_m: float = 250.0,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Experiment E4: re-identification rate with and without swapping.

    The attacker's knowledge comes from the first (raw) half of the data; the
    second half is published through each variant.  Variants compare plain
    pseudonymisation, smoothing, and the full pipeline under the three swap
    policies, isolating the contribution of trajectory swapping.

    Two attackers are reported: the POI-matching attacker (defeated as soon as
    POIs are hidden) and the spatial-footprint attacker (only defeated when
    user segments are actually mixed by the swapping step).
    """
    training, publish = split_train_publish(world, train_fraction)
    poi_attacker = Reidentifier(ReidentificationConfig(match_distance_m=match_distance_m))
    poi_knowledge = poi_attacker.knowledge_from_dataset(training)
    footprint_attacker = FootprintReidentifier()
    footprint_knowledge = footprint_attacker.knowledge_from_dataset(
        training, bbox=world.dataset.bbox.expanded(500.0)
    )

    def score_both(published: MobilityDataset, truth: Dict[str, str]) -> Tuple[float, float]:
        poi_rate = poi_attacker.attack(published, poi_knowledge).accuracy(truth)
        footprint_rate = footprint_attacker.attack(published, footprint_knowledge).accuracy(truth)
        return poi_rate, footprint_rate

    rows: List[Dict[str, object]] = []

    # Variant 1: pseudonymisation only (the naive practice the paper criticises).
    published = PseudonymizationMechanism(seed=seed).publish(publish)
    truth = _pseudonym_truth(publish, published)
    poi_rate, footprint_rate = score_both(published, truth)
    rows.append(_reident_row("pseudonyms-only", poi_rate, footprint_rate, len(published)))

    # Variant 2: speed smoothing, then pseudonyms (first mechanism alone).
    smoothed = SpeedSmoothingMechanism(SpeedSmoothingConfig(epsilon_m=100.0)).publish(publish)
    published = PseudonymizationMechanism(seed=seed).publish(smoothed)
    truth = _pseudonym_truth(smoothed, published)
    poi_rate, footprint_rate = score_both(published, truth)
    rows.append(_reident_row("smoothing+pseudonyms", poi_rate, footprint_rate, len(published)))

    # Variants 3-5: the full pipeline under each swap policy.
    for policy in (SwapPolicy.NEVER, SwapPolicy.COIN_FLIP, SwapPolicy.ALWAYS):
        mechanism = FullPipelineMechanism(
            AnonymizerConfig(swapping=SwapConfig(policy=policy, seed=seed))
        )
        published = mechanism.publish(publish)
        report = mechanism.last_report
        truth = {
            label: majority_owner(segments)
            for label, segments in report.segment_ownership.items()
            if majority_owner(segments) is not None
        }
        poi_rate, footprint_rate = score_both(published, truth)
        rows.append(
            _reident_row(
                f"paper-full(swap={policy.value})",
                poi_rate,
                footprint_rate,
                len(published),
                n_zones=report.n_zones,
                n_swaps=report.n_swaps,
            )
        )
    return rows


def _pseudonym_truth(
    before: MobilityDataset, published: MobilityDataset
) -> Dict[str, str]:
    """Recover the pseudonym -> user mapping by matching identical trajectories."""
    truth: Dict[str, str] = {}
    for traj in published:
        for original in before:
            if len(original) == len(traj) and np.array_equal(
                np.asarray(original.timestamps), np.asarray(traj.timestamps)
            ):
                truth[traj.user_id] = original.user_id
                break
    return truth


def _reident_row(
    variant: str,
    poi_rate: float,
    footprint_rate: float,
    n_published: int,
    n_zones: int = 0,
    n_swaps: int = 0,
) -> Dict[str, object]:
    return {
        "variant": variant,
        "poi_attack_rate": poi_rate,
        "footprint_attack_rate": footprint_rate,
        "published_users": n_published,
        "n_zones": n_zones,
        "n_swaps": n_swaps,
    }


# ---------------------------------------------------------------------------
# E5 / E8 — tracking confusion and mix-zone statistics
# ---------------------------------------------------------------------------


def run_tracking(
    world: SyntheticWorld,
    zone_radii_m: Sequence[float] = (50.0, 100.0, 200.0),
    policy: SwapPolicy = SwapPolicy.ALWAYS,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Experiment E5: multi-target tracking success versus mix-zone radius."""
    rows: List[Dict[str, object]] = []
    tracker = MultiTargetTracker(TrackingConfig())
    for radius in zone_radii_m:
        mechanism = FullPipelineMechanism(
            AnonymizerConfig(
                detection=MixZoneDetectionConfig(radius_m=radius),
                swapping=SwapConfig(policy=policy, seed=seed),
            )
        )
        published = mechanism.publish(world.dataset)
        report = mechanism.last_report
        linkages = tracker.link_zones(published, [r.zone for r in report.swap_records])
        success = tracking_success(linkages, report.swap_records)
        rows.append(
            {
                "zone_radius_m": radius,
                "swap_policy": policy.value,
                "n_zones": report.n_zones,
                "n_swapped_zones": report.n_swaps,
                "tracking_success": success,
                "mixing_entropy_bits": empirical_mixing_entropy_bits(report.swap_records),
                "suppressed_points": report.suppressed_points,
            }
        )
    return rows


def run_mixzone_stats(
    world: SyntheticWorld,
    zone_radii_m: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
) -> List[Dict[str, object]]:
    """Experiment E8: how many natural mix-zones exist at each radius."""
    from ..mixzones.detection import MixZoneDetector

    rows: List[Dict[str, object]] = []
    for radius in zone_radii_m:
        detector = MixZoneDetector(MixZoneDetectionConfig(radius_m=radius))
        zones = detector.detect(world.dataset)
        sizes = [z.n_participants for z in zones] or [0]
        rows.append(
            {
                "zone_radius_m": radius,
                "n_zones": len(zones),
                "mean_participants": float(np.mean(sizes)),
                "max_participants": int(np.max(sizes)),
                "mean_entropy_bits": float(np.mean([z.anonymity_set_entropy_bits() for z in zones]))
                if zones
                else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E6 — privacy/utility trade-off frontier
# ---------------------------------------------------------------------------


def run_tradeoff_frontier(
    world: SyntheticWorld,
    match_distance_m: float = 250.0,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Experiment E6: (POI F-score, median distortion) per mechanism and parameter.

    Sweeps the main knob of each mechanism family and reports, for every
    setting, the privacy achieved (POI retrieval F-score, lower is better) and
    the utility cost (median spatial distortion in meters plus area coverage).
    """
    sweeps: List[Tuple[str, PublicationMechanism]] = []
    for epsilon_m in (50.0, 100.0, 200.0, 400.0):
        sweeps.append(
            (f"smoothing-eps{int(epsilon_m)}", SpeedSmoothingMechanism(SpeedSmoothingConfig(epsilon_m=epsilon_m)))
        )
    for label, ratio in (("l2-200m", math.log(2.0) / 200.0), ("l4-200m", math.log(4.0) / 200.0), ("l10-200m", math.log(10.0) / 200.0)):
        sweeps.append((f"geo-ind-{label}", GeoIndistinguishabilityMechanism(GeoIndConfig(epsilon_per_m=ratio, seed=seed))))
    for k, delta in ((2, 250.0), (4, 500.0), (8, 1000.0)):
        sweeps.append((f"wait4me-k{k}-d{int(delta)}", Wait4MeMechanism(Wait4MeConfig(k=k, delta_m=delta, seed=seed))))
    sweeps.append(("paper-full", FullPipelineMechanism(AnonymizerConfig(swapping=SwapConfig(seed=seed)))))
    sweeps.append(("raw", IdentityMechanism()))

    truth = ground_truth_pois(world)
    extractor = PoiExtractor(PoiExtractionConfig())
    rows: List[Dict[str, object]] = []
    for name, mechanism in sweeps:
        published = mechanism.publish(world.dataset)
        extracted = [poi for pois in extractor.extract_dataset(published).values() for poi in pois]
        poi_score = poi_retrieval_pooled(truth, extracted, match_distance_m=match_distance_m)
        distortion = dataset_spatial_distortion(world.dataset, published, match_by_user=False)
        coverage = area_coverage(world.dataset, published, cell_size_m=200.0)
        rows.append(
            {
                "mechanism": name,
                "poi_f_score": poi_score.f_score,
                "poi_recall": poi_score.recall,
                "median_distortion_m": distortion.median,
                "area_coverage_f": coverage.f_score,
                "point_retention": point_retention(world.dataset, published),
                "range_query_error": range_query_distortion(world.dataset, published, n_queries=100, seed=seed),
            }
        )
    return rows
