"""Experiment runners: the logic behind every benchmark of EXPERIMENTS.md.

Each ``run_*`` function is now a *thin declarative spec*: it names the
mechanisms, attacks and metrics of one experiment of DESIGN.md as registry
spec strings, hands the cross product to the shared
:class:`~repro.experiments.engine.EvaluationEngine`, and projects the engine
rows onto the experiment's historical row schema.  Benchmarks stay thin: they
build the workload, call the runner inside ``benchmark(...)`` and print the
rows with :mod:`repro.experiments.formatting`.

Adding a mechanism to every experiment is now one registry entry plus one
line in :data:`DEFAULT_MECHANISM_SPECS`; adding a whole experiment is one
:class:`~repro.experiments.engine.ExperimentSpec`.

``default_mechanisms`` remains as a deprecated shim over
:data:`DEFAULT_MECHANISM_SPECS` for callers that still want a dict of live
mechanism objects.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.evaluators import ground_truth_pois
from ..api.registry import make_mechanism
from ..baselines.base import PublicationMechanism
from ..datagen.mobility import SyntheticWorld
from ..mixzones.swapping import SwapPolicy
from .engine import EvaluationEngine, ExperimentSpec

__all__ = [
    "DEFAULT_MECHANISM_SPECS",
    "DEFAULT_SEED_SWEEP",
    "seed_sweep",
    "configure_default_engine",
    "default_engine",
    "default_mechanisms",
    "ground_truth_pois",
    "run_poi_retrieval",
    "run_spatial_distortion",
    "run_area_coverage",
    "run_reidentification",
    "run_tracking",
    "run_tradeoff_frontier",
    "run_mixzone_stats",
]


def seed_sweep(n: int = 5) -> Tuple[int, ...]:
    """The ``seeds=range(n)`` sweep preset for variance-reporting runs.

    Pass the result as the ``seeds`` argument of a runner (or an
    :class:`~repro.experiments.engine.ExperimentSpec`) and summarise the
    per-seed rows with
    :func:`~repro.experiments.formatting.summarize_over_seeds`; the per-cell
    engine cache makes repeated sweeps incremental.
    """
    if n < 1:
        raise ValueError(f"seed sweep needs at least one seed, got {n}")
    return tuple(range(n))


#: The standard five-seed sweep (mean ± 95 % CI in the benchmarks).
DEFAULT_SEED_SWEEP: Tuple[int, ...] = seed_sweep(5)


# ---------------------------------------------------------------------------
# Mechanism suites
# ---------------------------------------------------------------------------

#: The standard comparison suite used by E1-E3 and E6, as registry specs:
#: the raw-publication anchor, the paper's smoothing at two spacing values,
#: the full pipeline, Geo-Indistinguishability at two privacy levels,
#: Wait-For-Me, and naive down-sampling.  Seeds are injected per experiment
#: by the engine's ``seeds`` axis.
DEFAULT_MECHANISM_SPECS: Dict[str, str] = {
    "raw": "identity",
    "smoothing-eps100": "smoothing:epsilon_m=100.0",
    "smoothing-eps200": "smoothing:epsilon_m=200.0",
    "paper-full": "promesse:swap=coin_flip",
    "geo-ind-strong": f"geo-ind:epsilon_per_m={math.log(2.0) / 200.0!r}",
    "geo-ind-weak": f"geo-ind:epsilon_per_m={math.log(10.0) / 200.0!r}",
    "wait4me-k4-d500": "wait4me:k=4,delta_m=500.0",
    "downsample-x10": "downsampling:factor=10",
}


def default_mechanisms(seed: int = 0) -> Dict[str, PublicationMechanism]:
    """Deprecated: the comparison suite as live legacy mechanism objects.

    Prefer :data:`DEFAULT_MECHANISM_SPECS` (registry specs the evaluation
    engine consumes directly) or ``make_mechanism(spec)`` for a single
    mechanism under the unified API.
    """
    warnings.warn(
        "default_mechanisms() is deprecated; use DEFAULT_MECHANISM_SPECS "
        "with ExperimentSpec/EvaluationEngine, or repro.api.make_mechanism()",
        DeprecationWarning,
        stacklevel=2,
    )
    return {
        name: make_mechanism(spec, defaults={"seed": seed}, wrap=False)
        for name, spec in DEFAULT_MECHANISM_SPECS.items()
    }


def _engine_from_env() -> EvaluationEngine:
    """The shared engine, honouring the ``REPRO_ENGINE_*`` environment knobs.

    ``REPRO_ENGINE_BACKEND`` selects the scheduler (``serial``,
    ``multiprocessing:workers=4``, ``work-queue:workers=4``, or the fleet
    form ``work-queue:bind=0.0.0.0,advertise=10.0.0.5,workers=0,batch=4``
    — remote hosts then join with ``python -m repro.experiments.worker
    --connect 10.0.0.5:PORT``), ``REPRO_ENGINE_CACHE`` the cell store
    (``memory``, ``off``, ``sqlite:path=cells.sqlite`` — with a work-queue
    backend, workers write the sqlite file directly and ship only acks) and
    ``REPRO_ENGINE_WORKERS`` the default worker count — so a benchmark
    suite, a CI step or a fleet coordinator can re-route every ``run_*``
    experiment without touching call sites.  ``REPRO_WORKER_LOG_DIR``
    additionally redirects spawned workers' stdout/stderr to
    ``worker-<id>.log`` files there.
    """
    return EvaluationEngine(
        workers=max(int(os.environ.get("REPRO_ENGINE_WORKERS", "1") or 1), 1),
        cache=os.environ.get("REPRO_ENGINE_CACHE") or True,
        backend=os.environ.get("REPRO_ENGINE_BACKEND") or None,
    )


#: Shared engine: per-cell caching makes repeated runner calls on the same
#: world (e.g. a benchmark re-run) incremental.
_ENGINE = _engine_from_env()


def configure_default_engine(
    backend: Optional[Any] = None,
    cache: Optional[Any] = None,
    workers: Optional[int] = None,
) -> EvaluationEngine:
    """Rebuild the engine shared by every ``run_*`` entry point.

    ``backend``/``cache`` accept everything
    :class:`~repro.experiments.engine.EvaluationEngine` accepts (spec strings,
    instances); ``None`` keeps the defaults.  Returns the new engine, e.g. to
    inspect ``cache_hits`` after a sweep.
    """
    global _ENGINE
    _ENGINE = EvaluationEngine(
        workers=workers if workers is not None else 1,
        cache=cache if cache is not None else True,
        backend=backend,
    )
    return _ENGINE


def default_engine() -> EvaluationEngine:
    """The engine currently shared by the ``run_*`` entry points."""
    return _ENGINE


#: Engines built for explicit (scheduler, cell_cache) selections, memoized so
#: repeated runner calls (a benchmark loop) keep their per-cell caches.
_CUSTOM_ENGINES: Dict[Tuple, EvaluationEngine] = {}


def _resolve_engine(scheduler: Optional[Any], cell_cache: Optional[Any]) -> EvaluationEngine:
    """The engine a ``run_*`` call should use.

    With neither ``scheduler`` nor ``cell_cache`` given, the shared default
    engine; hashable selections (spec strings, bools) are memoized so
    repeated calls reuse one engine and its cache; live backend/store objects
    get a fresh engine per call (the caller owns their lifecycle).
    """
    if scheduler is None and cell_cache is None:
        return _ENGINE
    key = (
        scheduler if isinstance(scheduler, (str, type(None))) else None,
        cell_cache if isinstance(cell_cache, (str, bool, type(None))) else None,
    )
    hashable = (scheduler is None or isinstance(scheduler, str)) and (
        cell_cache is None or isinstance(cell_cache, (str, bool))
    )
    if hashable and key in _CUSTOM_ENGINES:
        return _CUSTOM_ENGINES[key]
    engine = EvaluationEngine(
        cache=cell_cache if cell_cache is not None else True,
        backend=scheduler,
    )
    if hashable:
        _CUSTOM_ENGINES[key] = engine
    return engine


MechanismMap = Mapping[str, Union[str, PublicationMechanism]]


def _mechanism_axis(mechanisms: Optional[MechanismMap]) -> List[Tuple[str, object]]:
    if mechanisms is None:
        return list(DEFAULT_MECHANISM_SPECS.items())
    return [(name, mechanism) for name, mechanism in mechanisms.items()]


#: One legacy row column: its key and how to read it off an engine row.
RowColumn = Tuple[str, Callable[[Dict[str, object]], object]]


def _project(
    rows: Sequence[Dict[str, object]], mapping: Iterable[RowColumn]
) -> List[Dict[str, object]]:
    """Project engine rows onto a legacy row schema (ordered key -> source)."""
    return [{key: source(row) for key, source in mapping} for row in rows]


def _with_seed_column(
    mapping: Iterable[RowColumn], seeds: Sequence[int]
) -> List[RowColumn]:
    """Prefix the row schema with the seed column on multi-seed sweeps.

    Single-seed runs keep the exact legacy schema; a sweep needs the seed in
    the row so variance summaries can group on the remaining columns.
    """
    if len(tuple(seeds)) <= 1:
        return list(mapping)
    return [("seed", _col("seed"))] + list(mapping)


def _col(name: str) -> Callable[[Dict[str, object]], object]:
    return lambda row: row[name]


# ---------------------------------------------------------------------------
# E1 — POI retrieval
# ---------------------------------------------------------------------------


def run_poi_retrieval(
    world: SyntheticWorld,
    mechanisms: Optional[MechanismMap] = None,
    attack: str = "staypoint",
    match_distance_m: float = 250.0,
    min_stay_s: float = 900.0,
    adaptive_attacker: bool = True,
    seeds: Sequence[int] = (0,),
    engine: str = "vectorized",
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E1: POI retrieval precision / recall / F-score per mechanism.

    ``attack`` selects the extraction algorithm (``"staypoint"`` or
    ``"djcluster"``) and ``engine`` its implementation (``"vectorized"``
    columnar kernels by default; ``"reference"`` the scalar oracles).  POIs
    are pooled across users before scoring because published identifiers may
    be pseudonymous or swapped.

    When ``adaptive_attacker`` is true (default), the attack parameters are
    scaled to each mechanism's *announced* noise level
    (``PublicationResult.properties``): a Geo-Indistinguishability release
    announces its ``epsilon``, so a realistic attacker widens the clustering
    diameter to a few times the expected noise radius before searching for
    stays — this is how Primault et al. (MOST'14) showed that the mechanism
    leaves the majority of POIs recoverable.
    """
    if attack not in ("staypoint", "djcluster"):
        raise ValueError(f"unknown attack {attack!r}; choose 'staypoint' or 'djcluster'")
    attack_spec = (
        f"poi-retrieval:algorithm={attack},match_distance_m={match_distance_m!r},"
        f"min_stay_s={min_stay_s!r},adaptive={str(bool(adaptive_attacker)).lower()},"
        f"engine={engine}"
    )
    spec = ExperimentSpec(
        name="e1-poi-retrieval",
        mechanisms=_mechanism_axis(mechanisms),
        attacks=[(attack, attack_spec)],
        worlds=["world"],
        seeds=tuple(seeds),
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        _with_seed_column(
            [
                ("mechanism", _col("mechanism")),
                ("attack", _col("attack")),
                ("precision", _col("precision")),
                ("recall", _col("recall")),
                ("f_score", _col("f_score")),
                ("n_true_pois", _col("n_true_pois")),
                ("n_extracted", _col("n_extracted")),
            ],
            seeds,
        ),
    )


# ---------------------------------------------------------------------------
# E2 — spatial distortion
# ---------------------------------------------------------------------------


def run_spatial_distortion(
    world: SyntheticWorld,
    mechanisms: Optional[MechanismMap] = None,
    seeds: Sequence[int] = (0,),
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E2: spatial distortion and point retention per mechanism.

    Pass ``seeds=seed_sweep(5)`` to sweep the mechanism seeds and report
    variance (the rows then carry a leading ``seed`` column; summarise with
    :func:`~repro.experiments.formatting.summarize_over_seeds`).
    """
    spec = ExperimentSpec(
        name="e2-spatial-distortion",
        mechanisms=_mechanism_axis(mechanisms),
        metrics=[
            (
                "spatial-distortion:match_by_user=false",
                "point-retention",
                "trip-length-error",
            )
        ],
        worlds=["world"],
        seeds=tuple(seeds),
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        _with_seed_column(
            [
                ("mechanism", _col("mechanism")),
                ("mean_m", _col("mean_m")),
                ("median_m", _col("median_m")),
                ("p95_m", _col("p95_m")),
                ("max_m", _col("max_m")),
                ("point_retention", _col("point_retention")),
                ("trip_length_error", _col("trip_length_error")),
            ],
            seeds,
        ),
    )


# ---------------------------------------------------------------------------
# E3 — area coverage
# ---------------------------------------------------------------------------


def run_area_coverage(
    world: SyntheticWorld,
    mechanisms: Optional[MechanismMap] = None,
    cell_sizes_m: Sequence[float] = (100.0, 200.0, 400.0, 800.0),
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E3: cell-cover F-score per mechanism and cell size."""
    spec = ExperimentSpec(
        name="e3-area-coverage",
        mechanisms=_mechanism_axis(mechanisms),
        metrics=[f"area-coverage:cell_size_m={float(size)!r}" for size in cell_sizes_m],
        worlds=["world"],
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        [
            ("mechanism", _col("mechanism")),
            ("cell_size_m", _col("cell_size_m")),
            ("precision", _col("precision")),
            ("recall", _col("recall")),
            ("f_score", _col("f_score")),
        ],
    )


# ---------------------------------------------------------------------------
# E4 — re-identification
# ---------------------------------------------------------------------------


def run_reidentification(
    world: SyntheticWorld,
    train_fraction: float = 0.5,
    match_distance_m: float = 250.0,
    seed: int = 0,
    engine: str = "vectorized",
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E4: re-identification rate with and without swapping.

    The attacker's knowledge comes from the first (raw) half of the data; the
    second half is published through each variant.  Variants compare plain
    pseudonymisation, smoothing, and the full pipeline under the three swap
    policies, isolating the contribution of trajectory swapping.

    Two attackers are reported: the POI-matching attacker (defeated as soon as
    POIs are hidden) and the spatial-footprint attacker (only defeated when
    user segments are actually mixed by the swapping step).  ``engine``
    selects their implementation (``"vectorized"`` columnar kernels by
    default; ``"reference"`` the scalar oracles).
    """
    variants: List[Tuple[str, str]] = [
        ("pseudonyms-only", f"pseudonyms:seed={seed}"),
        ("smoothing+pseudonyms", f"smoothing:epsilon_m=100.0|pseudonyms:seed={seed}"),
    ]
    for policy in (SwapPolicy.NEVER, SwapPolicy.COIN_FLIP, SwapPolicy.ALWAYS):
        variants.append(
            (
                f"paper-full(swap={policy.value})",
                f"promesse:swap={policy.value},seed={seed}",
            )
        )
    attack_spec = (
        f"reident:train_fraction={train_fraction!r},"
        f"match_distance_m={match_distance_m!r},engine={engine}"
    )
    spec = ExperimentSpec(
        name="e4-reidentification",
        mechanisms=variants,
        attacks=[("reident", attack_spec)],
        worlds=["world"],
        input=f"publish-half:train_fraction={train_fraction!r}",
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        [
            ("variant", _col("mechanism")),
            ("poi_attack_rate", _col("poi_attack_rate")),
            ("footprint_attack_rate", _col("footprint_attack_rate")),
            ("published_users", _col("published_users")),
            ("n_zones", _col("n_zones")),
            ("n_swaps", _col("n_swaps")),
        ],
    )


# ---------------------------------------------------------------------------
# E5 / E8 — tracking confusion and mix-zone statistics
# ---------------------------------------------------------------------------


def run_tracking(
    world: SyntheticWorld,
    zone_radii_m: Sequence[float] = (50.0, 100.0, 200.0),
    policy: SwapPolicy = SwapPolicy.ALWAYS,
    seed: int = 0,
    engine: str = "vectorized",
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E5: multi-target tracking success versus mix-zone radius.

    ``engine`` selects the tracker implementation (``"vectorized"`` columnar
    default; ``"reference"`` the scalar oracle).
    """
    radii = [float(radius) for radius in zone_radii_m]
    spec = ExperimentSpec(
        name="e5-tracking",
        mechanisms=[
            (
                f"promesse-r{int(radius)}",
                f"promesse:zone_radius_m={radius!r},swap={policy.value},seed={seed}",
            )
            for radius in radii
        ],
        attacks=[("tracking", f"tracking:engine={engine}")],
        metrics=[("swap-stats", "mixing-entropy")],
        worlds=["world"],
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return [
        {
            "zone_radius_m": radius,
            "swap_policy": policy.value,
            "n_zones": row["n_zones"],
            "n_swapped_zones": row["n_swaps"],
            "tracking_success": row["tracking_success"],
            "mixing_entropy_bits": row["mixing_entropy_bits"],
            "suppressed_points": row["suppressed_points"],
        }
        for radius, row in zip(radii, rows)
    ]


def run_mixzone_stats(
    world: SyntheticWorld,
    zone_radii_m: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E8: how many natural mix-zones exist at each radius."""
    spec = ExperimentSpec(
        name="e8-mixzone-stats",
        mechanisms=["identity"],
        attacks=[
            (f"zone-census-r{int(radius)}", f"zone-census:radius_m={float(radius)!r}")
            for radius in zone_radii_m
        ],
        worlds=["world"],
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        [
            ("zone_radius_m", _col("zone_radius_m")),
            ("n_zones", _col("n_zones")),
            ("mean_participants", _col("mean_participants")),
            ("max_participants", _col("max_participants")),
            ("mean_entropy_bits", _col("mean_entropy_bits")),
        ],
    )


# ---------------------------------------------------------------------------
# E6 — privacy/utility trade-off frontier
# ---------------------------------------------------------------------------


def run_tradeoff_frontier(
    world: SyntheticWorld,
    match_distance_m: float = 250.0,
    seed: int = 0,
    scheduler: Optional[Any] = None,
    cell_cache: Optional[Any] = None,
) -> List[Dict[str, object]]:
    """Experiment E6: (POI F-score, median distortion) per mechanism and parameter.

    Sweeps the main knob of each mechanism family and reports, for every
    setting, the privacy achieved (POI retrieval F-score, lower is better) and
    the utility cost (median spatial distortion in meters plus area coverage).
    """
    sweeps: List[Tuple[str, str]] = []
    for epsilon_m in (50.0, 100.0, 200.0, 400.0):
        sweeps.append(
            (f"smoothing-eps{int(epsilon_m)}", f"smoothing:epsilon_m={epsilon_m!r}")
        )
    for label, ratio in (
        ("l2-200m", math.log(2.0) / 200.0),
        ("l4-200m", math.log(4.0) / 200.0),
        ("l10-200m", math.log(10.0) / 200.0),
    ):
        sweeps.append(
            (f"geo-ind-{label}", f"geo-ind:epsilon_per_m={ratio!r},seed={seed}")
        )
    for k, delta in ((2, 250.0), (4, 500.0), (8, 1000.0)):
        sweeps.append(
            (f"wait4me-k{k}-d{int(delta)}", f"wait4me:k={k},delta_m={delta!r},seed={seed}")
        )
    sweeps.append(("paper-full", f"promesse:swap=coin_flip,seed={seed}"))
    sweeps.append(("raw", "identity"))

    attack_spec = (
        f"poi-retrieval:algorithm=staypoint,match_distance_m={match_distance_m!r},"
        "adaptive=false,prefix=poi_"
    )
    spec = ExperimentSpec(
        name="e6-tradeoff-frontier",
        mechanisms=sweeps,
        attacks=[("staypoint", attack_spec)],
        metrics=[
            (
                "spatial-distortion:match_by_user=false",
                "area-coverage:cell_size_m=200.0,prefix=cov_",
                "point-retention",
                f"range-query:n_queries=100,seed={seed}",
            )
        ],
        worlds=["world"],
    )
    rows = _resolve_engine(scheduler, cell_cache).run(spec, worlds={"world": world})
    return _project(
        rows,
        [
            ("mechanism", _col("mechanism")),
            ("poi_f_score", _col("poi_f_score")),
            ("poi_recall", _col("poi_recall")),
            ("median_distortion_m", _col("median_m")),
            ("area_coverage_f", _col("cov_f_score")),
            ("point_retention", _col("point_retention")),
            ("range_query_error", _col("range_query_error")),
        ],
    )
