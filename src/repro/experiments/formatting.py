"""Plain-text table and series formatting for experiment outputs.

Benchmarks print their results as aligned text tables so that the regenerated
"tables and figures" of EXPERIMENTS.md are readable directly from the pytest
output, with no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "format_percent"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned plain-text table.

    Numeric cells are formatted with three decimals; everything else uses
    ``str``.  The return value ends with a newline so it can be printed
    directly.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_format_cell(cell) for cell in row])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series as the two-column table of a figure's data."""
    return format_table(["x", name], list(zip(xs, ys)))


def format_percent(value: float) -> str:
    """Format a ratio as a percentage with one decimal (``0.61 -> '61.0%'``)."""
    return f"{100.0 * value:.1f}%"


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
