"""Plain-text table and series formatting for experiment outputs.

Benchmarks print their results as aligned text tables so that the regenerated
"tables and figures" of EXPERIMENTS.md are readable directly from the pytest
output, with no plotting dependency.

Seed sweeps report variance: :func:`summarize_over_seeds` collapses the rows
of a multi-seed engine run into one row per cell with every numeric column
replaced by a ``(mean, half_width)`` pair (95 % confidence interval of the
mean, Student-t), which :func:`format_table` renders as ``mean ± half``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "format_table",
    "format_series",
    "format_percent",
    "mean_ci",
    "summarize_over_seeds",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned plain-text table.

    Numeric cells are formatted with three decimals; everything else uses
    ``str``.  The return value ends with a newline so it can be printed
    directly.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_format_cell(cell) for cell in row])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series as the two-column table of a figure's data."""
    return format_table(["x", name], list(zip(xs, ys)))


def format_percent(value: float) -> str:
    """Format a ratio as a percentage with one decimal (``0.61 -> '61.0%'``)."""
    return f"{100.0 * value:.1f}%"


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.3f}"
    if (
        isinstance(cell, tuple)
        and len(cell) == 2
        and all(isinstance(part, (int, float)) for part in cell)
    ):
        return f"{cell[0]:.3f} ± {cell[1]:.3f}"
    return str(cell)


# ---------------------------------------------------------------------------
# Seed-sweep variance reporting
# ---------------------------------------------------------------------------

#: Two-sided 95 % Student-t critical values by degrees of freedom (1-30);
#: larger samples use the normal value.  Hard-coded to keep scipy optional.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)
_Z95 = 1.960


def mean_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95 % confidence half-width of the mean (Student-t).

    A single observation has an undefined interval; its half-width is 0 so
    one-seed runs degrade to plain means.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("mean_ci needs at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T95[n - 2] if n - 1 <= len(_T95) else _Z95
    return mean, t * math.sqrt(variance / n)


def summarize_over_seeds(
    rows: Iterable[Mapping[str, object]],
    group_by: Sequence[str],
    drop: Sequence[str] = ("seed",),
) -> List[Dict[str, object]]:
    """Collapse per-seed rows into one row per ``group_by`` combination.

    Numeric columns become ``(mean, 95 % half-width)`` tuples — rendered by
    :func:`format_table` as ``mean ± half`` — plus an ``n_seeds`` count;
    non-numeric columns must be constant within a group and pass through.
    Row order follows first appearance of each group.
    """
    groups: Dict[Tuple, List[Mapping[str, object]]] = {}
    for row in rows:
        groups.setdefault(tuple(row[k] for k in group_by), []).append(row)

    summaries: List[Dict[str, object]] = []
    for key, members in groups.items():
        summary: Dict[str, object] = dict(zip(group_by, key))
        for column in members[0]:
            if column in group_by or column in drop:
                continue
            values = [m[column] for m in members]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
                summary[column] = mean_ci(values)
            else:
                distinct = {repr(v) for v in values}
                if len(distinct) > 1:
                    raise ValueError(
                        f"non-numeric column {column!r} varies within group {key!r}"
                    )
                summary[column] = values[0]
        summary["n_seeds"] = len(members)
        summaries.append(summary)
    return summaries
