"""Adapters exposing the paper's mechanisms through the common interface.

These wrappers let the experiment harness treat the paper's pipeline exactly
like any baseline (:class:`~repro.baselines.base.PublicationMechanism`):

* :class:`SpeedSmoothingMechanism` — the first mechanism alone (constant
  speed, Figure 1b);
* :class:`FullPipelineMechanism` — smoothing plus mix-zone swapping
  (Figure 1c), keeping the last :class:`~repro.core.pipeline.AnonymizationReport`
  available for provenance-based scoring.
"""

from __future__ import annotations

from typing import Optional

from ..core.pipeline import AnonymizationReport, Anonymizer, AnonymizerConfig
from ..core.speed_smoothing import SpeedSmoother, SpeedSmoothingConfig
from ..core.trajectory import MobilityDataset
from .base import PublicationMechanism

__all__ = ["SpeedSmoothingMechanism", "FullPipelineMechanism"]


class SpeedSmoothingMechanism(PublicationMechanism):
    """The paper's constant-speed transformation, as a standalone mechanism."""

    name = "speed-smoothing"

    def __init__(self, config: Optional[SpeedSmoothingConfig] = None) -> None:
        self._smoother = SpeedSmoother(config)

    @property
    def config(self) -> SpeedSmoothingConfig:
        """The smoothing configuration in use."""
        return self._smoother.config

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        return self._smoother.smooth_dataset(dataset)


class FullPipelineMechanism(PublicationMechanism):
    """The paper's full pipeline: smoothing followed by mix-zone swapping."""

    name = "paper-full"

    def __init__(self, config: Optional[AnonymizerConfig] = None) -> None:
        self._anonymizer = Anonymizer(config)
        self.last_report: Optional[AnonymizationReport] = None

    @property
    def config(self) -> AnonymizerConfig:
        """The pipeline configuration in use."""
        return self._anonymizer.config

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        published, report = self._anonymizer.publish(dataset)
        self.last_report = report
        return published
