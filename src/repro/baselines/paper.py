"""Adapters exposing the paper's mechanisms through the common interface.

These wrappers let the experiment harness treat the paper's pipeline exactly
like any baseline (:class:`~repro.baselines.base.PublicationMechanism`):

* :class:`SpeedSmoothingMechanism` — the first mechanism alone (constant
  speed, Figure 1b);
* :class:`FullPipelineMechanism` — smoothing plus mix-zone swapping
  (Figure 1c), keeping the last :class:`~repro.core.pipeline.AnonymizationReport`
  available for provenance-based scoring.
"""

from __future__ import annotations

from typing import Optional

from ..api.registry import register_mechanism
from ..core.pipeline import AnonymizationReport, Anonymizer, AnonymizerConfig
from ..core.speed_smoothing import SpeedSmoother, SpeedSmoothingConfig
from ..core.trajectory import MobilityDataset
from ..mixzones.detection import MixZoneDetectionConfig
from ..mixzones.swapping import SwapConfig, SwapPolicy
from .base import PublicationMechanism

__all__ = ["SpeedSmoothingMechanism", "FullPipelineMechanism"]


class SpeedSmoothingMechanism(PublicationMechanism):
    """The paper's constant-speed transformation, as a standalone mechanism."""

    name = "speed-smoothing"

    def __init__(self, config: Optional[SpeedSmoothingConfig] = None) -> None:
        self._smoother = SpeedSmoother(config)

    @property
    def config(self) -> SpeedSmoothingConfig:
        """The smoothing configuration in use."""
        return self._smoother.config

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        return self._smoother.smooth_dataset(dataset)


class FullPipelineMechanism(PublicationMechanism):
    """The paper's full pipeline: smoothing followed by mix-zone swapping."""

    name = "paper-full"

    def __init__(self, config: Optional[AnonymizerConfig] = None) -> None:
        self._anonymizer = Anonymizer(config)
        self.last_report: Optional[AnonymizationReport] = None

    @property
    def config(self) -> AnonymizerConfig:
        """The pipeline configuration in use."""
        return self._anonymizer.config

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        published, report = self._anonymizer.publish(dataset)
        self.last_report = report
        return published


# ---------------------------------------------------------------------------
# Registry factories (flat-parameter spec surface over the nested configs)
# ---------------------------------------------------------------------------


@register_mechanism("smoothing", aliases=("speed-smoothing",))
def _smoothing_mechanism(
    epsilon_m: float = 100.0,
    trim_start_m: float = 0.0,
    trim_end_m: float = 0.0,
    min_points: int = 2,
    session_gap_s: Optional[float] = 1800.0,
) -> SpeedSmoothingMechanism:
    """The paper's speed smoothing alone, e.g. ``smoothing:epsilon_m=200``."""
    return SpeedSmoothingMechanism(
        SpeedSmoothingConfig(
            epsilon_m=epsilon_m,
            trim_start_m=trim_start_m,
            trim_end_m=trim_end_m,
            min_points=min_points,
            session_gap_s=session_gap_s,
        )
    )


@register_mechanism("promesse", aliases=("paper-full", "pipeline"))
def _promesse_mechanism(
    epsilon_m: float = 100.0,
    zone_radius_m: float = 100.0,
    swap: str = "coin_flip",
    seed: Optional[int] = 0,
    enable_smoothing: bool = True,
    enable_swapping: bool = True,
    pseudonymize: bool = True,
    time_tolerance_s: float = 1800.0,
) -> FullPipelineMechanism:
    """The full pipeline, e.g. ``promesse:zone_radius_m=200,swap=always``."""
    policy = SwapPolicy(str(swap).replace("-", "_"))
    return FullPipelineMechanism(
        AnonymizerConfig(
            smoothing=SpeedSmoothingConfig(epsilon_m=epsilon_m),
            detection=MixZoneDetectionConfig(radius_m=zone_radius_m),
            swapping=SwapConfig(
                policy=policy,
                pseudonymize=pseudonymize,
                time_tolerance_s=time_tolerance_s,
                seed=seed,
            ),
            enable_smoothing=enable_smoothing,
            enable_swapping=enable_swapping,
        )
    )
