"""Geo-Indistinguishability baseline (Andrés et al., CCS 2013).

Geo-Indistinguishability extends differential privacy to location data: a
mechanism is ``epsilon``-geo-indistinguishable when the probability of
reporting any obfuscated location from two true locations at distance ``d``
differs by at most a factor ``exp(epsilon * d)``.  The canonical mechanism is
the **planar Laplace**: each reported point is the true point plus 2D noise
whose radius follows a Gamma(2, 1/epsilon) distribution and whose angle is
uniform.

The paper cites this mechanism as the state of the art it improves upon for
*data publication*: because the noise is purely spatial, protecting POIs
requires large ``epsilon * r`` products that destroy the geometry of the
trace, and even then the repeated sampling of the same stop averages out the
noise and leaves POIs recoverable (the "at least 60 % of POIs extracted"
statement in Section II).  Experiments E1/E2/E6 quantify this trade-off.

``epsilon`` here is expressed per meter, as in the original paper; a typical
"high privacy" configuration is ``epsilon = ln(4) / 200`` (a factor 4 over
200 m).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..api.registry import register_mechanism
from ..core.trajectory import MobilityDataset, Trajectory
from ..geo.projection import LocalProjection
from .base import PublicationMechanism

__all__ = ["GeoIndConfig", "GeoIndistinguishabilityMechanism", "planar_laplace_noise"]


def planar_laplace_noise(
    epsilon_per_m: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` planar Laplace offsets, returned as an ``(size, 2)`` array.

    The radial component follows a Gamma(shape=2, scale=1/epsilon) law — the
    polar form of the planar Laplace density ``p(r) ∝ r·exp(-ε·r)`` — and the
    angular component is uniform in ``[0, 2π)``.
    """
    if epsilon_per_m <= 0.0:
        raise ValueError("epsilon_per_m must be positive")
    radii = rng.gamma(shape=2.0, scale=1.0 / epsilon_per_m, size=size)
    angles = rng.uniform(0.0, 2.0 * np.pi, size=size)
    return np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)


@dataclass(frozen=True)
class GeoIndConfig:
    """Parameters of the Geo-Indistinguishability mechanism.

    Attributes
    ----------
    epsilon_per_m:
        Privacy budget per meter.  Smaller values give stronger privacy and
        larger noise; ``ln(4)/200 ≈ 0.0069`` protects within a 200 m radius.
    per_point_budget:
        When true (default) the full ``epsilon_per_m`` is spent on every
        point independently, which is how the mechanism is typically applied
        to sporadic location release.  When false, the budget is divided by
        the number of points of the trajectory (the composition-aware variant
        for whole-trace release), producing far more noise on long traces.
    seed:
        Random seed for reproducible noise.
    """

    epsilon_per_m: float = np.log(4.0) / 200.0
    per_point_budget: bool = True
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.epsilon_per_m <= 0.0:
            raise ValueError("epsilon_per_m must be positive")


class GeoIndistinguishabilityMechanism(PublicationMechanism):
    """Planar Laplace perturbation of every published point."""

    name = "geo-ind"

    def __init__(self, config: Optional[GeoIndConfig] = None) -> None:
        self.config = config or GeoIndConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def publish_trajectory(self, trajectory: Trajectory) -> Trajectory:
        """Perturb every fix of one trajectory with planar Laplace noise."""
        if len(trajectory) == 0:
            return trajectory
        cfg = self.config
        epsilon = cfg.epsilon_per_m
        if not cfg.per_point_budget:
            epsilon = cfg.epsilon_per_m / max(len(trajectory), 1)
        lats = np.asarray(trajectory.lats)
        lons = np.asarray(trajectory.lons)
        projection = LocalProjection.centered_on(lats, lons)
        xs, ys = projection.project_array(lats, lons)
        noise = planar_laplace_noise(epsilon, len(trajectory), self._rng)
        new_lats, new_lons = projection.unproject_array(xs + noise[:, 0], ys + noise[:, 1])
        # Clamp to valid WGS84 bounds (relevant only for extreme noise draws).
        new_lats = np.clip(new_lats, -90.0, 90.0)
        new_lons = np.clip(new_lons, -180.0, 180.0)
        return Trajectory(trajectory.user_id, trajectory.timestamps, new_lats, new_lons)

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        """Perturb every trajectory of the dataset independently."""
        return dataset.map_trajectories(self.publish_trajectory)

    def public_properties(self) -> dict:
        """A Geo-I release announces its privacy budget, hence its noise scale.

        ``noise_radius_m`` is the mean planar-Laplace radius ``2 / epsilon``
        — the figure an informed attacker scales its clustering diameter to.
        """
        return {
            "epsilon_per_m": self.config.epsilon_per_m,
            "noise_radius_m": 2.0 / self.config.epsilon_per_m,
        }


@register_mechanism("geo-ind", aliases=("geo-i", "geoind"))
def _geo_ind_mechanism(
    epsilon_per_m: float = float(np.log(4.0) / 200.0),
    per_point_budget: bool = True,
    seed: Optional[int] = 0,
) -> GeoIndistinguishabilityMechanism:
    """Planar-Laplace perturbation, e.g. ``geo-ind:epsilon_per_m=0.005,seed=7``."""
    return GeoIndistinguishabilityMechanism(
        GeoIndConfig(
            epsilon_per_m=epsilon_per_m, per_point_budget=per_point_budget, seed=seed
        )
    )
