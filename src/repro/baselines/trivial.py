"""Trivial publication mechanisms used as experiment anchors.

Neither mechanism here offers real protection; they bound the comparison:

* :class:`IdentityMechanism` publishes the raw data unchanged — the utility
  ceiling and the privacy floor of every experiment.
* :class:`DownsamplingMechanism` keeps one fix out of ``factor`` — the naive
  "publish less" strategy sometimes proposed as a privacy measure, which the
  POI attack defeats easily because stops are long relative to any realistic
  sampling interval.
* :class:`PseudonymizationMechanism` replaces user identifiers with fresh
  pseudonyms but leaves locations untouched — the anonymization practice the
  paper's introduction calls "simple anonymization techniques [that] might
  lead to severe privacy threats".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..api.registry import register_mechanism
from ..core.trajectory import MobilityDataset
from .base import PublicationMechanism

__all__ = ["IdentityMechanism", "DownsamplingMechanism", "PseudonymizationMechanism"]


@register_mechanism("identity", aliases=("raw",))
class IdentityMechanism(PublicationMechanism):
    """Publish the dataset unchanged (no protection)."""

    name = "identity"

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        return dataset


@register_mechanism("downsampling", aliases=("downsample",))
@dataclass
class DownsamplingMechanism(PublicationMechanism):
    """Publish one fix out of every ``factor`` for each user."""

    factor: int = 10
    name: str = "downsampling"

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("factor must be at least 1")

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        return dataset.map_trajectories(lambda t: t.downsample(self.factor))


@register_mechanism("pseudonyms", aliases=("pseudonymization",))
@dataclass
class PseudonymizationMechanism(PublicationMechanism):
    """Replace user identifiers with random pseudonyms; keep locations intact.

    The pseudonym -> original-user mapping of the most recent publication is
    kept in ``last_pseudonym_of`` as provenance for the unified API (it is
    what linkage attacks are scored against).
    """

    seed: Optional[int] = 0
    name: str = "pseudonyms"

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        rng = np.random.default_rng(self.seed)
        users = dataset.user_ids
        order = rng.permutation(len(users))
        mapping = {users[i]: f"p{rank:04d}" for rank, i in enumerate(order)}
        self.last_pseudonym_of: Dict[str, str] = {
            pseudonym: user for user, pseudonym in mapping.items()
        }
        return dataset.relabel(mapping)
