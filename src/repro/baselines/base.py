"""Common interface of publication mechanisms.

Every protection mechanism evaluated in the reproduction — the paper's
pipeline, Geo-Indistinguishability, Wait-For-Me, and the trivial anchors —
exposes the same minimal interface: transform a :class:`MobilityDataset` into
the dataset that gets published.  The experiment harness only relies on this
interface, so adding a new mechanism to the comparison means implementing a
single method.

The ``publish() -> MobilityDataset`` surface is the *legacy* one.  The
unified API (:mod:`repro.api`) wraps these mechanisms so ``publish()``
returns a provenance-carrying
:class:`~repro.api.result.PublicationResult`; :meth:`publish_result` is the
bridge, and mechanisms can feed it by exposing three optional hooks:

* ``last_report`` — an :class:`~repro.core.pipeline.AnonymizationReport`
  from the most recent publication;
* ``last_pseudonym_of`` — published label -> original user mapping;
* :meth:`public_properties` — parameters the mechanism announces publicly
  (an adaptive attacker may read them).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict

from ..core.trajectory import MobilityDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import PublicationResult

__all__ = ["PublicationMechanism"]


class PublicationMechanism(ABC):
    """A mechanism that turns a raw dataset into a publishable one."""

    #: Short machine-friendly identifier used in experiment tables.
    name: str = "mechanism"

    @abstractmethod
    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        """Return the protected dataset; the input is never modified."""

    def publish_result(self, dataset: MobilityDataset) -> "PublicationResult":
        """Publish under the unified API: dataset plus provenance."""
        from ..api.adapters import publish_result

        return publish_result(self, dataset, label=self.name)

    def public_properties(self) -> Dict[str, object]:
        """Parameters this mechanism publicly announces (none by default)."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
