"""Common interface of publication mechanisms.

Every protection mechanism evaluated in the reproduction — the paper's
pipeline, Geo-Indistinguishability, Wait-For-Me, and the trivial anchors —
exposes the same minimal interface: transform a :class:`MobilityDataset` into
the dataset that gets published.  The experiment harness only relies on this
interface, so adding a new mechanism to the comparison means implementing a
single method.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core.trajectory import MobilityDataset

__all__ = ["PublicationMechanism"]


class PublicationMechanism(ABC):
    """A mechanism that turns a raw dataset into a publishable one."""

    #: Short machine-friendly identifier used in experiment tables.
    name: str = "mechanism"

    @abstractmethod
    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        """Return the protected dataset; the input is never modified."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
