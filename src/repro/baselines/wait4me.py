"""Wait-For-Me baseline: (k, δ)-anonymity for trajectories (Abul et al., 2010).

Wait For Me (W4M) enforces *(k, δ)-anonymity*: at every instant, each
published trajectory must be accompanied by at least ``k - 1`` others within a
cylinder of diameter ``δ``.  The original algorithm proceeds in two phases:

1. **Clustering** — greedily group trajectories into clusters of at least
   ``k`` members using a synchronized trajectory distance (trajectories are
   resampled on a common time grid first); trajectories that cannot be
   grouped without excessive distortion are discarded (the "trash bin").
2. **Space translation** — inside each cluster and at each time step, points
   lying farther than ``δ/2`` from the cluster centroid are pulled toward the
   centroid until they fit inside the cylinder.

The published data therefore satisfies the anonymity property at the cost of
spatial edits that grow with the spread of each cluster — the utility loss the
paper contrasts with its distortion-free approach.  As the paper notes, W4M
"performs well with a synthetic dataset but [has] more difficulties to
maintain a correct utility with a real-life dataset"; experiments E1/E2/E6
reproduce that trade-off.

This implementation follows the published algorithm at the level of its
observable behaviour (synchronized clustering, trash bin, centroid-pull
editing); the EDR-based ad-hoc clustering distance of the original is replaced
by the synchronized Euclidean distance, which the authors themselves use for
the space-translation phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import register_mechanism
from ..core.trajectory import MobilityDataset, Trajectory
from ..geo.projection import LocalProjection
from .base import PublicationMechanism

__all__ = ["Wait4MeConfig", "Wait4MeMechanism"]


@register_mechanism("wait4me", aliases=("w4m",))
def _wait4me_mechanism(
    k: int = 4,
    delta_m: float = 500.0,
    time_step_s: float = 300.0,
    max_cluster_radius_m: float = 4000.0,
    seed: Optional[int] = 0,
) -> "Wait4MeMechanism":
    """(k, delta)-anonymity, e.g. ``wait4me:k=8,delta_m=1000``."""
    return Wait4MeMechanism(
        Wait4MeConfig(
            k=k,
            delta_m=delta_m,
            time_step_s=time_step_s,
            max_cluster_radius_m=max_cluster_radius_m,
            seed=seed,
        )
    )


@dataclass(frozen=True)
class Wait4MeConfig:
    """Parameters of the (k, δ)-anonymization.

    Attributes
    ----------
    k:
        Minimum size of each anonymity group.
    delta_m:
        Diameter (meters) of the cylinder inside which the members of a group
        must lie at every synchronized time step.
    time_step_s:
        Resolution of the common time grid used to synchronize trajectories.
    max_cluster_radius_m:
        Trajectories farther than this from every existing cluster seed are
        sent to the trash bin (suppressed) instead of being force-fitted,
        bounding the worst-case distortion as in the original paper.
    seed:
        Seed used to pick cluster seeds (ordering only; no noise is added).
    """

    k: int = 4
    delta_m: float = 500.0
    time_step_s: float = 300.0
    max_cluster_radius_m: float = 4000.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.delta_m <= 0.0:
            raise ValueError("delta_m must be positive")
        if self.time_step_s <= 0.0:
            raise ValueError("time_step_s must be positive")
        if self.max_cluster_radius_m <= 0.0:
            raise ValueError("max_cluster_radius_m must be positive")


class Wait4MeMechanism(PublicationMechanism):
    """(k, δ)-anonymity by trajectory clustering and space translation."""

    name = "wait4me"

    def __init__(self, config: Optional[Wait4MeConfig] = None) -> None:
        self.config = config or Wait4MeConfig()

    # -- public API --------------------------------------------------------------------

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        """Anonymize the dataset; users sent to the trash bin are dropped."""
        non_empty = [t for t in dataset if len(t) >= 2]
        if len(non_empty) < self.config.k:
            # Not enough users to form a single anonymity group: nothing can
            # be published under (k, δ)-anonymity.
            return MobilityDataset()

        grid, synced = self._synchronize(non_empty)
        clusters, trashed = self._cluster(synced)
        published = self._space_translate(grid, synced, clusters)
        return MobilityDataset(published)

    # -- phase 1: synchronization ---------------------------------------------------------

    def _synchronize(
        self, trajectories: Sequence[Trajectory]
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Resample every trajectory on a common time grid.

        Returns the grid (timestamps) and, per user, an ``(n_grid, 2)`` array
        of planar positions in meters (NaN where the user is not observed,
        i.e. outside her recording interval).
        """
        cfg = self.config
        t_min = min(t.first.timestamp for t in trajectories)
        t_max = max(t.last.timestamp for t in trajectories)
        n_steps = max(2, int(np.ceil((t_max - t_min) / cfg.time_step_s)) + 1)
        grid = t_min + np.arange(n_steps) * cfg.time_step_s

        all_lats = np.concatenate([np.asarray(t.lats) for t in trajectories])
        all_lons = np.concatenate([np.asarray(t.lons) for t in trajectories])
        self._projection = LocalProjection.centered_on(all_lats, all_lons)

        synced: Dict[str, np.ndarray] = {}
        for traj in trajectories:
            ts = np.asarray(traj.timestamps)
            xs, ys = self._projection.project_array(np.asarray(traj.lats), np.asarray(traj.lons))
            gx = np.interp(grid, ts, xs, left=np.nan, right=np.nan)
            gy = np.interp(grid, ts, ys, left=np.nan, right=np.nan)
            synced[traj.user_id] = np.stack([gx, gy], axis=1)
        return grid, synced

    # -- phase 2: greedy clustering ----------------------------------------------------------

    def _cluster(
        self, synced: Dict[str, np.ndarray]
    ) -> Tuple[List[List[str]], List[str]]:
        """Greedy clustering into groups of at least ``k`` users.

        Repeatedly pick an unassigned seed user, attach its ``k - 1`` nearest
        unassigned users (by synchronized distance), and reject the group if
        any member is farther than ``max_cluster_radius_m`` from the seed (the
        seed is then trashed).  Leftover users that cannot form a final group
        are appended to the nearest existing cluster, as in the original
        algorithm's "k-anonymity preserving" post-processing.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        users = list(synced.keys())
        order = [users[i] for i in rng.permutation(len(users))]
        unassigned = set(users)
        clusters: List[List[str]] = []
        trashed: List[str] = []

        for seed_user in order:
            if seed_user not in unassigned:
                continue
            candidates = [u for u in unassigned if u != seed_user]
            if len(candidates) < cfg.k - 1:
                break
            distances = [
                (self._trajectory_distance(synced[seed_user], synced[u]), u) for u in candidates
            ]
            distances.sort(key=lambda pair: pair[0])
            group = [seed_user] + [u for _, u in distances[: cfg.k - 1]]
            worst = distances[cfg.k - 2][0]
            if not np.isfinite(worst) or worst > cfg.max_cluster_radius_m:
                trashed.append(seed_user)
                unassigned.discard(seed_user)
                continue
            clusters.append(group)
            unassigned.difference_update(group)

        # Attach leftovers to their nearest cluster rather than publishing a
        # group smaller than k.
        for user in list(unassigned):
            if not clusters:
                trashed.append(user)
                unassigned.discard(user)
                continue
            best = min(
                range(len(clusters)),
                key=lambda c: self._trajectory_distance(synced[user], synced[clusters[c][0]]),
            )
            best_dist = self._trajectory_distance(synced[user], synced[clusters[best][0]])
            if np.isfinite(best_dist) and best_dist <= cfg.max_cluster_radius_m:
                clusters[best].append(user)
            else:
                trashed.append(user)
            unassigned.discard(user)
        return clusters, trashed

    @staticmethod
    def _trajectory_distance(a: np.ndarray, b: np.ndarray) -> float:
        """Mean planar distance over the time steps where both users exist."""
        both = ~np.isnan(a[:, 0]) & ~np.isnan(b[:, 0])
        if not np.any(both):
            return np.inf
        diff = a[both] - b[both]
        return float(np.mean(np.hypot(diff[:, 0], diff[:, 1])))

    # -- phase 3: space translation -------------------------------------------------------------

    def _space_translate(
        self,
        grid: np.ndarray,
        synced: Dict[str, np.ndarray],
        clusters: List[List[str]],
    ) -> List[Trajectory]:
        """Pull cluster members inside the δ-cylinder around the cluster centroid."""
        cfg = self.config
        half_delta = cfg.delta_m / 2.0
        published: List[Trajectory] = []
        for cluster in clusters:
            stack = np.stack([synced[u] for u in cluster], axis=0)  # (m, n_grid, 2)
            # Per-step centroid of the observed members (all-NaN steps stay NaN
            # without triggering the nanmean empty-slice warning).
            observed_counts = np.sum(~np.isnan(stack[:, :, 0]), axis=0)  # (n_grid,)
            sums = np.nansum(stack, axis=0)  # (n_grid, 2)
            with np.errstate(invalid="ignore", divide="ignore"):
                centroid = np.where(
                    observed_counts[:, None] > 0, sums / observed_counts[:, None], np.nan
                )
            for m, user in enumerate(cluster):
                member = stack[m]
                observed = ~np.isnan(member[:, 0]) & ~np.isnan(centroid[:, 0])
                if not np.any(observed):
                    continue
                points = member[observed].copy()
                center = centroid[observed]
                offsets = points - center
                radii = np.hypot(offsets[:, 0], offsets[:, 1])
                # Scale down offsets exceeding δ/2 so the member fits in the cylinder.
                with np.errstate(divide="ignore", invalid="ignore"):
                    scale = np.where(radii > half_delta, half_delta / np.where(radii > 0, radii, 1.0), 1.0)
                points = center + offsets * scale[:, None]
                lats, lons = self._projection.unproject_array(points[:, 0], points[:, 1])
                published.append(Trajectory(user, grid[observed], lats, lons))
        return published
