"""Wait-For-Me baseline: (k, δ)-anonymity for trajectories (Abul et al., 2010).

Wait For Me (W4M) enforces *(k, δ)-anonymity*: at every instant, each
published trajectory must be accompanied by at least ``k - 1`` others within a
cylinder of diameter ``δ``.  The original algorithm proceeds in two phases:

1. **Clustering** — greedily group trajectories into clusters of at least
   ``k`` members using a synchronized trajectory distance (trajectories are
   resampled on a common time grid first); trajectories that cannot be
   grouped without excessive distortion are discarded (the "trash bin").
2. **Space translation** — inside each cluster and at each time step, points
   lying farther than ``δ/2`` from the cluster centroid are pulled toward the
   centroid until they fit inside the cylinder.

The published data therefore satisfies the anonymity property at the cost of
spatial edits that grow with the spread of each cluster — the utility loss the
paper contrasts with its distortion-free approach.  As the paper notes, W4M
"performs well with a synthetic dataset but [has] more difficulties to
maintain a correct utility with a real-life dataset"; experiments E1/E2/E6
reproduce that trade-off.

This implementation follows the published algorithm at the level of its
observable behaviour (synchronized clustering, trash bin, centroid-pull
editing); the EDR-based ad-hoc clustering distance of the original is replaced
by the synchronized Euclidean distance, which the authors themselves use for
the space-translation phase.

The clustering phase runs on the columnar kernel layer
(:mod:`repro.geo.kernels`): trajectories are resampled onto the common time
grid and projected as contiguous ``(n_users, n_steps)`` coordinate planes,
and each greedy round scores *every* remaining candidate with one batched
masked-distance query against a
:class:`~repro.geo.kernels.SyncedDistances` workspace instead of a Python
loop of per-pair reductions.  The scalar implementation is retained
(``engine="reference"``) as the equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import register_mechanism
from ..core.trajectory import MobilityDataset, Trajectory
from ..geo.kernels import SyncedDistances
from ..geo.projection import LocalProjection
from .base import PublicationMechanism

__all__ = ["Wait4MeConfig", "Wait4MeMechanism"]


@register_mechanism("wait4me", aliases=("w4m",))
def _wait4me_mechanism(
    k: int = 4,
    delta_m: float = 500.0,
    time_step_s: float = 300.0,
    max_cluster_radius_m: float = 4000.0,
    seed: Optional[int] = 0,
) -> "Wait4MeMechanism":
    """(k, delta)-anonymity, e.g. ``wait4me:k=8,delta_m=1000``."""
    return Wait4MeMechanism(
        Wait4MeConfig(
            k=k,
            delta_m=delta_m,
            time_step_s=time_step_s,
            max_cluster_radius_m=max_cluster_radius_m,
            seed=seed,
        )
    )


@dataclass(frozen=True)
class Wait4MeConfig:
    """Parameters of the (k, δ)-anonymization.

    Attributes
    ----------
    k:
        Minimum size of each anonymity group.
    delta_m:
        Diameter (meters) of the cylinder inside which the members of a group
        must lie at every synchronized time step.
    time_step_s:
        Resolution of the common time grid used to synchronize trajectories.
    max_cluster_radius_m:
        Trajectories farther than this from every existing cluster seed are
        sent to the trash bin (suppressed) instead of being force-fitted,
        bounding the worst-case distortion as in the original paper.
    seed:
        Seed used to pick cluster seeds (ordering only; no noise is added).
    engine:
        ``"vectorized"`` (default) scores candidates with the batched
        columnar kernels; ``"reference"`` runs the retained scalar greedy
        loop of identical semantics (the equivalence oracle).
    """

    k: int = 4
    delta_m: float = 500.0
    time_step_s: float = 300.0
    max_cluster_radius_m: float = 4000.0
    seed: Optional[int] = 0
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2")
        if self.delta_m <= 0.0:
            raise ValueError("delta_m must be positive")
        if self.time_step_s <= 0.0:
            raise ValueError("time_step_s must be positive")
        if self.max_cluster_radius_m <= 0.0:
            raise ValueError("max_cluster_radius_m must be positive")
        if self.engine not in ("vectorized", "reference"):
            raise ValueError(
                f"engine must be 'vectorized' or 'reference', got {self.engine!r}"
            )


class Wait4MeMechanism(PublicationMechanism):
    """(k, δ)-anonymity by trajectory clustering and space translation."""

    name = "wait4me"

    def __init__(self, config: Optional[Wait4MeConfig] = None) -> None:
        self.config = config or Wait4MeConfig()

    # -- public API --------------------------------------------------------------------

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        """Anonymize the dataset; users sent to the trash bin are dropped."""
        non_empty = [t for t in dataset if len(t) >= 2]
        if len(non_empty) < self.config.k:
            # Not enough users to form a single anonymity group: nothing can
            # be published under (k, δ)-anonymity.
            return MobilityDataset()

        grid, xs, ys, users = self._synchronize(non_empty)
        cluster = (
            self._cluster_reference if self.config.engine == "reference" else self._cluster
        )
        clusters, trashed = cluster(xs, ys)
        published = self._space_translate(grid, xs, ys, users, clusters)
        return MobilityDataset(published)

    # -- phase 1: synchronization ---------------------------------------------------------

    def _synchronize(
        self, trajectories: Sequence[Trajectory]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[str]]:
        """Resample every trajectory on a common time grid.

        Returns the grid (timestamps), the ``(n_users, n_grid)`` planes of
        planar x / y positions in meters (NaN where a user is not observed,
        i.e. outside her recording interval) and the user ids indexing their
        rows.

        Coordinates are interpolated in degrees and the resampled matrices
        projected with one batched call: the local projection is linear, so
        projecting after interpolation is exact and touches ``n_users x
        n_grid`` points instead of every raw fix.
        """
        cfg = self.config
        t_min = min(float(t.timestamps[0]) for t in trajectories)
        t_max = max(float(t.timestamps[-1]) for t in trajectories)
        n_steps = max(2, int(np.ceil((t_max - t_min) / cfg.time_step_s)) + 1)
        grid = t_min + np.arange(n_steps) * cfg.time_step_s

        n_points = sum(len(t) for t in trajectories)
        self._projection = LocalProjection(
            sum(float(np.sum(t.lats)) for t in trajectories) / n_points,
            sum(float(np.sum(t.lons)) for t in trajectories) / n_points,
        )
        grid_lats = np.empty((len(trajectories), n_steps))
        grid_lons = np.empty((len(trajectories), n_steps))
        for k, traj in enumerate(trajectories):
            ts = traj.timestamps
            grid_lats[k] = np.interp(grid, ts, traj.lats, left=np.nan, right=np.nan)
            grid_lons[k] = np.interp(grid, ts, traj.lons, left=np.nan, right=np.nan)
        xs, ys = self._projection.project_array_inplace(grid_lats, grid_lons)
        return grid, xs, ys, [t.user_id for t in trajectories]

    # -- phase 2: greedy clustering ----------------------------------------------------------

    def _cluster(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> Tuple[List[List[int]], List[int]]:
        """Greedy clustering into groups of at least ``k`` users (batched).

        Repeatedly pick an unassigned seed user, attach its ``k - 1`` nearest
        unassigned users (by synchronized distance), and reject the group if
        any member is farther than ``max_cluster_radius_m`` from the seed (the
        seed is then trashed).  Leftover users that cannot form a final group
        are appended to the nearest existing cluster, as in the original
        algorithm's "k-anonymity preserving" post-processing.

        Each round scores every remaining candidate with one batched query
        against a :class:`~repro.geo.kernels.SyncedDistances` workspace;
        clusters and the trash bin are returned as row indices into the
        planes.
        """
        cfg = self.config
        n = xs.shape[0]
        rng = np.random.default_rng(cfg.seed)
        order = rng.permutation(n)
        synced = SyncedDistances.from_planes(xs, ys, dtype=self._distance_dtype(xs, ys))
        unassigned = np.ones(n, dtype=bool)
        clusters: List[List[int]] = []
        trashed: List[int] = []

        for seed_user in order:
            seed_user = int(seed_user)
            if not unassigned[seed_user]:
                continue
            candidates = np.flatnonzero(unassigned)
            candidates = candidates[candidates != seed_user]
            if candidates.size < cfg.k - 1:
                break
            distances = synced.distances_from(seed_user, candidates)
            nearest = np.argsort(distances, kind="stable")[: cfg.k - 1]
            worst = float(distances[nearest[-1]])
            if not np.isfinite(worst) or worst > cfg.max_cluster_radius_m:
                trashed.append(seed_user)
                unassigned[seed_user] = False
                continue
            group = [seed_user] + [int(c) for c in candidates[nearest]]
            clusters.append(group)
            unassigned[group] = False

        # Attach leftovers to their nearest cluster rather than publishing a
        # group smaller than k.
        for user in np.flatnonzero(unassigned):
            user = int(user)
            unassigned[user] = False
            if not clusters:
                trashed.append(user)
                continue
            seeds = np.array([cluster[0] for cluster in clusters])
            distances = synced.distances_from(user, seeds)
            best = int(np.argmin(distances))
            if np.isfinite(distances[best]) and distances[best] <= cfg.max_cluster_radius_m:
                clusters[best].append(user)
            else:
                trashed.append(user)
        return clusters, trashed

    def _cluster_reference(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> Tuple[List[List[int]], List[int]]:
        """Scalar reference of :meth:`_cluster` (the equivalence oracle).

        Same greedy semantics with plain Python loops and one scalar distance
        query per candidate pair; retained for the property tests that pin
        the vectorized path to it.  Distances come from the same float32
        workspace semantics as :meth:`_cluster` so the two paths face
        identical numbers.
        """
        cfg = self.config
        n = xs.shape[0]
        rng = np.random.default_rng(cfg.seed)
        order = [int(i) for i in rng.permutation(n)]
        synced = SyncedDistances.from_planes(xs, ys, dtype=self._distance_dtype(xs, ys))
        unassigned = set(range(n))
        clusters: List[List[int]] = []
        trashed: List[int] = []

        for seed_user in order:
            if seed_user not in unassigned:
                continue
            candidates = [u for u in sorted(unassigned) if u != seed_user]
            if len(candidates) < cfg.k - 1:
                break
            distances = [
                (synced.pair_distance(seed_user, u), u) for u in candidates
            ]
            distances.sort(key=lambda pair: pair[0])
            group = [seed_user] + [u for _, u in distances[: cfg.k - 1]]
            worst = distances[cfg.k - 2][0]
            if not np.isfinite(worst) or worst > cfg.max_cluster_radius_m:
                trashed.append(seed_user)
                unassigned.discard(seed_user)
                continue
            clusters.append(group)
            unassigned.difference_update(group)

        for user in sorted(unassigned):
            unassigned.discard(user)
            if not clusters:
                trashed.append(user)
                continue
            dists = [
                synced.pair_distance(user, cluster[0]) for cluster in clusters
            ]
            best = min(range(len(clusters)), key=lambda c: dists[c])
            if np.isfinite(dists[best]) and dists[best] <= cfg.max_cluster_radius_m:
                clusters[best].append(user)
            else:
                trashed.append(user)
        return clusters, trashed

    @staticmethod
    def _distance_dtype(xs: np.ndarray, ys: np.ndarray):
        """Workspace precision for the synchronized clustering distances.

        float32 halves the memory traffic of the batched distance queries,
        but its ~1.2e-7 relative quantization is only harmless while planar
        coordinates stay within ~100 km of the projection origin (centimeter
        scale).  Continental extents — real GeoLife users travel abroad —
        fall back to float64.  Both clustering engines share this choice.
        """
        with np.errstate(invalid="ignore"):
            extent = max(
                float(np.nanmax(np.abs(xs), initial=0.0)),
                float(np.nanmax(np.abs(ys), initial=0.0)),
            )
        return np.float32 if extent < 1e5 else np.float64

    @staticmethod
    def _trajectory_distance(a: np.ndarray, b: np.ndarray) -> float:
        """Mean planar distance over the time steps where both users exist.

        The plain-formula statement of the synchronized distance, on an
        ``(n_grid, 2)`` stack.  Not used by either clustering engine (both
        query :class:`~repro.geo.kernels.SyncedDistances`); kept as the
        independent oracle the kernel unit tests compare against.
        """
        both = ~np.isnan(a[:, 0]) & ~np.isnan(b[:, 0])
        if not np.any(both):
            return np.inf
        diff = a[both] - b[both]
        dx, dy = diff[:, 0], diff[:, 1]
        return float(np.sum(np.sqrt(dx * dx + dy * dy)) / both.sum())

    # -- phase 3: space translation -------------------------------------------------------------

    def _space_translate(
        self,
        grid: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        users: List[str],
        clusters: List[List[int]],
    ) -> List[Trajectory]:
        """Pull cluster members inside the δ-cylinder around the cluster centroid."""
        cfg = self.config
        half_delta = cfg.delta_m / 2.0
        if not clusters:
            return []
        # One flat batch over every member of every cluster, on contiguous
        # coordinate planes.
        member_rows = np.concatenate([np.asarray(c, dtype=np.int64) for c in clusters])
        sizes = np.array([len(c) for c in clusters])
        cluster_of = np.repeat(np.arange(len(clusters)), sizes)  # (M,)
        px = xs[member_rows]  # (M, n_grid)
        py = ys[member_rows]
        observed = ~np.isnan(px)

        # Per-step cluster centroids in three small matmuls (all-NaN steps
        # stay NaN): the (n_clusters, M) membership indicator against the
        # zero-filled member planes and the observation mask.
        indicator = (cluster_of[None, :] == np.arange(len(clusters))[:, None]).astype(float)
        counts = indicator @ observed.astype(float)  # (n_clusters, n_grid)
        sum_x = indicator @ np.nan_to_num(px)
        sum_y = indicator @ np.nan_to_num(py)
        with np.errstate(invalid="ignore", divide="ignore"):
            centroid_x = np.where(counts > 0, sum_x / counts, np.nan)
            centroid_y = np.where(counts > 0, sum_y / counts, np.nan)
            # One batched pull for every member at once: offsets exceeding
            # δ/2 are scaled down so each member fits in its cluster's
            # cylinder.  NaN steps (member or centroid unobserved) propagate
            # and are masked out per member below.
            center_x = centroid_x[cluster_of]  # (M, n_grid)
            center_y = centroid_y[cluster_of]
            dx = px - center_x
            dy = py - center_y
            radii = np.sqrt(dx * dx + dy * dy)
            scale = np.where(
                radii > half_delta, half_delta / np.where(radii > 0, radii, 1.0), 1.0
            )
            pulled_x = center_x + dx * scale
            pulled_y = center_y + dy * scale
        lats, lons = self._projection.unproject_array(pulled_x, pulled_y)
        member_observed = ~np.isnan(pulled_x)
        published: List[Trajectory] = []
        for m, user_index in enumerate(member_rows):
            mask = member_observed[m]
            if not np.any(mask):
                continue
            published.append(
                Trajectory.from_sorted(
                    users[user_index], grid[mask], lats[m][mask], lons[m][mask]
                )
            )
        return published
