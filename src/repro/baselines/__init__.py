"""Baseline publication mechanisms compared against the paper's solution."""

from .base import PublicationMechanism
from .geo_indistinguishability import (
    GeoIndConfig,
    GeoIndistinguishabilityMechanism,
    planar_laplace_noise,
)
from .paper import FullPipelineMechanism, SpeedSmoothingMechanism
from .trivial import DownsamplingMechanism, IdentityMechanism, PseudonymizationMechanism
from .wait4me import Wait4MeConfig, Wait4MeMechanism

__all__ = [
    "PublicationMechanism",
    "GeoIndConfig",
    "GeoIndistinguishabilityMechanism",
    "planar_laplace_noise",
    "Wait4MeConfig",
    "Wait4MeMechanism",
    "IdentityMechanism",
    "DownsamplingMechanism",
    "PseudonymizationMechanism",
    "SpeedSmoothingMechanism",
    "FullPipelineMechanism",
]
