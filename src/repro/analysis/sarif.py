"""SARIF 2.1.0 emission, so findings surface as GitHub PR annotations.

One ``run`` per tool; results carry the rule id, message, and physical
location.  Findings accepted by the committed baseline are still emitted
but marked with an ``external`` suppression, which GitHub renders as
resolved — the annotation stream shows only what a PR actually adds.

The same document shape is reused by ``tools/mypy_ratchet.py`` for mypy
errors (ruleIds ``mypy/<code>``), so CI uploads both linters through one
code-scanning channel.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .findings import Finding

__all__ = ["findings_to_sarif", "sarif_document", "sarif_result"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def sarif_result(
    rule_id: str,
    message: str,
    path: str,
    line: int,
    suppressed: bool = False,
) -> Dict:
    """One SARIF result record (shared with the mypy ratchet)."""
    result: Dict = {
        "ruleId": rule_id,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": path.replace("\\", "/")},
                    "region": {"startLine": max(1, int(line))},
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def sarif_document(
    tool_name: str,
    results: Sequence[Dict],
    rules: Optional[Sequence[Dict]] = None,
    information_uri: str = "",
) -> Dict:
    """A single-run SARIF document wrapping prepared results."""
    driver: Dict = {"name": tool_name, "version": "1.0.0"}
    if information_uri:
        driver["informationUri"] = information_uri
    if rules:
        driver["rules"] = list(rules)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": list(results)}],
    }


def findings_to_sarif(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    rule_catalogue: Optional[Sequence] = None,
) -> str:
    """Render reprolint findings (new + suppressed-baselined) as SARIF."""
    rules: List[Dict] = []
    for rule in rule_catalogue or ():
        rules.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
            }
        )
    results = [
        sarif_result(f.rule, f.message, f.path, f.line, suppressed=False) for f in new
    ] + [
        sarif_result(f.rule, f.message, f.path, f.line, suppressed=True)
        for f in baselined
    ]
    document = sarif_document("reprolint", results, rules=rules)
    return json.dumps(document, indent=2) + "\n"
