"""Command-line entry point for the reprolint static analyzer.

Usage::

    python -m repro.analysis [paths ...] [--format text|json|sarif]
                             [--rules R1,R3] [--list-rules]
                             [--baseline PATH | --no-baseline]
                             [--update-baseline] [--output FILE]
                             [--update-cache-contract]

A committed baseline (``tools/reprolint-baseline.json``, shrink-only like
the mypy ratchet) is applied automatically when present: baselined findings
are reported as suppressed and do not fail the run.

Exit status: 0 when clean (no non-baselined findings), 1 when new findings
were emitted, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_PATH,
    load_baseline,
    partition_findings,
    write_baseline,
)
from .findings import format_findings
from .index import ModuleIndex
from .rules import ALL_RULES
from .sarif import findings_to_sarif

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _default_paths() -> List[str]:
    present = [p for p in _DEFAULT_PATHS if os.path.isdir(p)]
    return present if present else ["."]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST checks for the repro invariants (R1-R9)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run, e.g. R1,R3 (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "findings baseline to apply (default: "
            f"{DEFAULT_BASELINE_PATH} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any committed baseline: every finding fails the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "pin the current findings to the baseline file and exit clean; "
            "refuses to grow an existing baseline (shrink-only ratchet)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the formatted report to FILE instead of stdout",
    )
    parser.add_argument(
        "--update-cache-contract",
        action="store_true",
        help=(
            "regenerate cache_key_contract.json from the scanned source "
            "(run together with a CELL_KEY_FORMAT_VERSION bump), then lint"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.description}")
        return 0

    rule_ids = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id for rule in ALL_RULES}
        unknown = [r for r in rule_ids if r not in known]
        if unknown:
            parser.error(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )

    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    baseline_path = args.baseline
    if args.no_baseline:
        if args.baseline or args.update_baseline:
            parser.error("--no-baseline conflicts with --baseline/--update-baseline")
        baseline_path = None
    elif baseline_path is None and os.path.exists(DEFAULT_BASELINE_PATH):
        baseline_path = DEFAULT_BASELINE_PATH

    index = ModuleIndex.from_paths(paths)

    if args.update_cache_contract:
        from .rules.cache_key import write_contract

        written = write_contract(index)
        if written is None:
            print(
                "error: cannot regenerate the cache-key contract — "
                "repro/experiments/cache.py (with CELL_KEY_FORMAT_VERSION) "
                "is not under the scanned paths",
                file=sys.stderr,
            )
            return 2
        print(f"wrote {written}", file=sys.stderr)

    from . import run_analysis

    findings = run_analysis(paths, rules=rule_ids, index=index)

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_PATH
        try:
            pinned = write_baseline(target, findings)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"pinned {len(findings)} finding(s) ({pinned} entries) to {target}")
        return 0

    baseline = load_baseline(baseline_path) if baseline_path else {}
    new, baselined, fixed = partition_findings(findings, baseline)

    if args.format == "sarif":
        output = findings_to_sarif(new, baselined, ALL_RULES)
    else:
        output = format_findings(new, args.format)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output if output.endswith("\n") or not output else output + "\n")
        print(f"wrote {args.output} ({len(new)} new finding(s))")
    elif output:
        print(output)

    if args.format == "text" and not args.output:
        if baselined:
            print(f"{len(baselined)} baselined finding(s) suppressed", file=sys.stderr)
        if fixed:
            print(
                f"{fixed} baselined finding(s) no longer occur — shrink the "
                "baseline with --update-baseline",
                file=sys.stderr,
            )
        if not new:
            print(f"reprolint: clean ({len(index.modules)} modules scanned)")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
