"""Command-line entry point for the reprolint static analyzer.

Usage::

    python -m repro.analysis [paths ...] [--format text|json]
                             [--rules R1,R3] [--list-rules]
                             [--update-cache-contract]

Exit status: 0 when clean, 1 when findings were emitted, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .findings import format_findings
from .index import ModuleIndex
from .rules import ALL_RULES

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _default_paths() -> List[str]:
    present = [p for p in _DEFAULT_PATHS if os.path.isdir(p)]
    return present if present else ["."]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST checks for the repro invariants (R1-R5)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run, e.g. R1,R3 (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--update-cache-contract",
        action="store_true",
        help=(
            "regenerate cache_key_contract.json from the scanned source "
            "(run together with a CELL_KEY_FORMAT_VERSION bump), then lint"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.description}")
        return 0

    rule_ids = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id for rule in ALL_RULES}
        unknown = [r for r in rule_ids if r not in known]
        if unknown:
            parser.error(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )

    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    index = ModuleIndex.from_paths(paths)

    if args.update_cache_contract:
        from .rules.cache_key import write_contract

        written = write_contract(index)
        if written is None:
            print(
                "error: cannot regenerate the cache-key contract — "
                "repro/experiments/cache.py (with CELL_KEY_FORMAT_VERSION) "
                "is not under the scanned paths",
                file=sys.stderr,
            )
            return 2
        print(f"wrote {written}", file=sys.stderr)

    from . import run_analysis

    findings = run_analysis(paths, rules=rule_ids, index=index)
    output = format_findings(findings, args.format)
    if output:
        print(output)
    if args.format == "text" and not findings:
        print(f"reprolint: clean ({len(index.modules)} modules scanned)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
