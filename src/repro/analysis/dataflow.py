"""Forward taint dataflow with bounded-depth call summaries.

A :class:`TaintPolicy` names the three ingredients of a dataflow rule:

* **sources** — calls (``dataset.columnar()``, ``np.memmap(...)``) or
  attribute loads (``.lats``) that produce a tainted value;
* **sanitizers** — calls that launder taint (``arr.copy()``, ``np.array``);
* **sinks** — places a tainted value must not reach: augmented assignment,
  slice/subscript stores, in-place mutator methods (``sort``), ``out=``
  keywords, and chain sinks like ``np.copyto(dst, ...)``.

The :class:`TaintEngine` interprets one function at a time, flow-forward
and path-insensitive (branches accumulate, reassignment kills).  Calls into
*resolved* project functions transfer through a :class:`CallSummary`
computed on demand: does parameter *i* reach a sink, does the return value
carry taint from parameter *i*, is the return value itself a source?
Summaries are memoized per function; recursion is cut by an in-progress
guard and a bounded call depth, so cyclic call graphs terminate with the
empty (under-approximate) summary — a linter must converge, not iterate
to fixpoint.

Two polarities share the interpreter: *finding* runs leave parameters
untainted (the caller who passes a tainted argument gets the finding, at
the call site), *summary* runs taint each parameter with its index.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .astutil import dotted_chain, import_aliases
from .callgraph import CallGraph, FunctionInfo
from .index import ParsedModule

__all__ = ["TaintPolicy", "TaintEngine", "TaintSink", "CallSummary"]

#: A taint origin: ("source", description, line) or ("param", index).
Origin = Tuple


@dataclass(frozen=True)
class TaintPolicy:
    """Sources, sanitizers, and sinks for one dataflow rule."""

    #: (alias-resolved dotted chain | None, call) -> origin description | None
    source_call: Callable[[Optional[List[str]], ast.Call], Optional[str]]
    #: attribute names whose *load* is a source (e.g. columnar field names)
    source_attrs: FrozenSet[str] = frozenset()
    #: method names that return a laundered value (``x.copy()``)
    sanitizer_methods: FrozenSet[str] = frozenset({"copy"})
    #: alias-resolved chains that launder their argument (``np.array``)
    sanitizer_chains: FrozenSet[Tuple[str, ...]] = frozenset()
    #: method names that mutate their receiver in place (``x.sort()``)
    mutator_methods: FrozenSet[str] = frozenset()
    #: keyword arguments that write into their value (``out=``)
    out_keywords: FrozenSet[str] = frozenset({"out"})
    #: alias-resolved chains whose positional arg N is written (``np.copyto``)
    sink_chains: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    #: attribute loads on a tainted value stay tainted (``traces.lats``)
    taint_attributes: bool = True


@dataclass(frozen=True)
class CallSummary:
    """What a callee does with taint, as seen from a call site."""

    sink_params: Dict[int, str] = field(default_factory=dict)  #: index -> sink
    returns_params: FrozenSet[int] = frozenset()
    returns_source: Optional[str] = None  #: origin description, when born tainted


_EMPTY_SUMMARY = CallSummary()

_OP_SYMBOLS = {
    "Add": "+", "Sub": "-", "Mult": "*", "Div": "/", "FloorDiv": "//",
    "Mod": "%", "Pow": "**", "LShift": "<<", "RShift": ">>",
    "BitOr": "|", "BitAnd": "&", "BitXor": "^", "MatMult": "@",
}


@dataclass(frozen=True)
class TaintSink:
    """A tainted value reaching a sink inside one function."""

    line: int
    scope_line: int
    sink: str  #: what the mutation was
    origin: str  #: where the taint came from


class TaintEngine:
    """Interprets functions under a policy, memoizing call summaries."""

    def __init__(self, graph: CallGraph, policy: TaintPolicy, max_depth: int = 6) -> None:
        self.graph = graph
        self.policy = policy
        self.max_depth = max_depth
        self._summaries: Dict[str, CallSummary] = {}
        self._in_progress: set = set()
        self._alias_cache: Dict[str, Dict[str, str]] = {}

    # -- public entry points --------------------------------------------------------

    def findings_for(self, info: FunctionInfo) -> List[TaintSink]:
        """Sinks reached by locally-born taint (parameters stay clean)."""
        run = _Interp(self, info, param_taint=False)
        run.exec_block(getattr(info.node, "body", []))
        return run.sinks

    def summary_for(self, key: str, depth: Optional[int] = None) -> CallSummary:
        """The callee-side taint summary, bounded and cycle-safe."""
        if key in self._summaries:
            return self._summaries[key]
        depth = self.max_depth if depth is None else depth
        if depth <= 0 or key in self._in_progress:
            return _EMPTY_SUMMARY
        info = self.graph.functions.get(key)
        if info is None or info.is_class:
            return _EMPTY_SUMMARY
        self._in_progress.add(key)
        try:
            run = _Interp(self, info, param_taint=True, depth=depth)
            run.exec_block(getattr(info.node, "body", []))
            summary = CallSummary(
                sink_params={
                    origin[1]: sink.sink
                    for sink, origin in run.param_sinks
                },
                returns_params=frozenset(
                    o[1] for o in run.return_origins if o[0] == "param"
                ),
                returns_source=next(
                    (o[1] for o in run.return_origins if o[0] == "source"), None
                ),
            )
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    # -- shared helpers -------------------------------------------------------------

    def aliases_for(self, module: ParsedModule) -> Dict[str, str]:
        cached = self._alias_cache.get(module.logical)
        if cached is None:
            cached = import_aliases(module.tree)
            self._alias_cache[module.logical] = cached
        return cached


class _Interp:
    """One flow-forward pass over a function body."""

    def __init__(
        self, engine: TaintEngine, info: FunctionInfo, param_taint: bool, depth: Optional[int] = None
    ) -> None:
        self.engine = engine
        self.policy = engine.policy
        self.info = info
        self.depth = engine.max_depth if depth is None else depth
        self.aliases = engine.aliases_for(info.module)
        self.env: Dict[str, Origin] = {}
        self.sinks: List[TaintSink] = []
        self.param_sinks: List[Tuple[TaintSink, Origin]] = []
        self.return_origins: List[Origin] = []
        if param_taint:
            args = getattr(info.node, "args", None)
            if args is not None:
                names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
                offset = 1 if names and names[0] in ("self", "cls") else 0
                for i, name in enumerate(names[offset:]):
                    self.env[name] = ("param", i)

    # -- statements -----------------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origin = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, origin, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_origin = self.eval(stmt.value)
            target_origin = self.eval(stmt.target)
            if target_origin is not None:
                op = _OP_SYMBOLS.get(type(stmt.op).__name__, type(stmt.op).__name__)
                self.report(stmt, f"augmented assignment ({op}=)", target_origin)
            elif isinstance(stmt.target, ast.Name) and value_origin is not None:
                # ``x += tainted``: x now aliases nothing shared (fresh object
                # for arrays would be false — but += on untainted lhs keeps
                # the lhs, so propagate conservatively).
                self.env[stmt.target.id] = value_origin
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origin = self.eval(stmt.iter)
            self.bind(stmt.target, origin, stmt.iter)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origin = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, origin, item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                origin = self.eval(stmt.value)
                if origin is not None:
                    self.return_origins.append(origin)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are separate graph concerns, not this flow
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def bind(self, target: ast.expr, origin: Optional[Origin], value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if origin is None:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = origin
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems = value.elts if isinstance(value, (ast.Tuple, ast.List)) else None
            for i, sub in enumerate(target.elts):
                sub_origin = origin
                if elems is not None and i < len(elems):
                    sub_origin = self.eval(elems[i])
                self.bind(sub, sub_origin, value)
        elif isinstance(target, ast.Subscript):
            base_origin = self.eval(target.value)
            if base_origin is not None:
                self.report(target, "subscript/slice assignment", base_origin)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and origin is not None:
                self.env[f"{target.value.id}.{target.attr}"] = origin
        elif isinstance(target, ast.Starred):
            self.bind(target.value, origin, value)

    # -- expressions ----------------------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Optional[Origin]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                composite = self.env.get(f"{node.value.id}.{node.attr}")
                if composite is not None:
                    return composite
            base = self.eval(node.value)
            if node.attr in self.policy.source_attrs:
                return ("source", f"shared array attribute '.{node.attr}'", node.lineno)
            if base is not None and self.policy.taint_attributes:
                return base
            return None
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)  # a view of tainted is tainted
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            origins = [self.eval(e) for e in node.elts]
            return next((o for o in origins if o is not None), None)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) or self.eval(node.orelse)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            origin = self.eval(node.value)
            self.bind(node.target, origin, node.value)
            return origin
        if isinstance(node, ast.BoolOp):
            origins = [self.eval(v) for v in node.values]
            return next((o for o in origins if o is not None), None)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            # Arithmetic allocates a fresh array: the result is not a view.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def eval_call(self, call: ast.Call) -> Optional[Origin]:
        arg_origins = [self.eval(arg) for arg in call.args]
        kw_origins = {kw.arg: self.eval(kw.value) for kw in call.keywords}
        chain = dotted_chain(call.func, self.aliases)

        source = self.policy.source_call(chain, call)
        if source is not None:
            return ("source", source, call.lineno)

        if chain and tuple(chain) in self.policy.sanitizer_chains:
            return None
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in self.policy.sanitizer_methods:
                return None
            receiver = self.eval(call.func.value)
            if receiver is not None and call.func.attr in self.policy.mutator_methods:
                self.report(call, f".{call.func.attr}()", receiver)

        for kw in call.keywords:
            if kw.arg in self.policy.out_keywords and kw_origins.get(kw.arg) is not None:
                self.report(call, f"{kw.arg}= argument", kw_origins[kw.arg])
        if chain and tuple(chain) in self.policy.sink_chains:
            index = self.policy.sink_chains[tuple(chain)]
            if index < len(arg_origins) and arg_origins[index] is not None:
                self.report(call, f"{'.'.join(chain)}()", arg_origins[index])

        callee = self.engine.graph.call_target(call)
        if callee is not None:
            summary = self.engine.summary_for(callee, self.depth - 1)
            callee_name = self.engine.graph.functions[callee].qualname
            for i, origin in enumerate(arg_origins):
                if origin is not None and i in summary.sink_params:
                    self.report(
                        call,
                        f"call to {callee_name}() (which applies "
                        f"{summary.sink_params[i]} to its parameter)",
                        origin,
                    )
            if summary.returns_source is not None:
                return ("source", summary.returns_source, call.lineno)
            for i, origin in enumerate(arg_origins):
                if origin is not None and i in summary.returns_params:
                    return origin
        # Unresolved calls return clean values: under-approximate on purpose.
        return None

    # -- reporting ------------------------------------------------------------------

    def report(self, node: ast.AST, sink: str, origin: Origin) -> None:
        scope_line = getattr(self.info.node, "lineno", 1)
        described = (
            f"parameter {origin[1]}" if origin[0] == "param" else f"{origin[1]} (line {origin[2]})"
        )
        record = TaintSink(
            line=getattr(node, "lineno", scope_line),
            scope_line=scope_line,
            sink=sink,
            origin=described,
        )
        if origin[0] == "param":
            self.param_sinks.append((record, origin))
        else:
            self.sinks.append(record)
