"""Project-wide call graph over the parsed-module index.

The graph is the name-resolution substrate for the interprocedural rules
(R7-R9) and the taint engine: every top-level function, method and class in
the scanned tree becomes a node, and edges are added for

* direct calls (``helper(x)``, ``module.helper(x)``) resolved through the
  module's imports — absolute imports resolve by dotted-path suffix against
  the scanned tree (so fixture trees replicating ``repro/...`` resolve the
  same way the real tree does), relative imports resolve against the
  importing module's package directory;
* method calls — ``self.m()`` / ``cls.m()`` through the enclosing class and
  its (resolved) bases, ``obj.m()`` when ``obj``'s class is inferred from a
  local construction, an annotation, or a resolved call's return annotation;
* instantiations — calling a class adds an edge to the class node; the
  reachability walk can *expand* a visited class into its methods (an object
  built on a cell-computation path has its methods called on that path);
* bare references — passing ``f`` (undecorated, uncalled) to ``pool.map``
  or a decorator still edges to ``f``: address-taken means called;
* registry indirection — ``make_attack("spec")`` / ``ATTACKS.create_parsed``
  with a literal spec string edges to the factory registered under that
  name (``|`` chains split, ``:params`` stripped); a non-literal spec edges
  to every factory of that registry kind.

Resolution is deliberately best-effort: anything unresolved (stdlib, numpy,
dynamic dispatch) simply produces no edge.  Rules built on the graph are
therefore under-approximate, which is the right polarity for a linter.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .index import ModuleIndex, ParsedModule

__all__ = ["CallGraph", "FunctionInfo", "ClassInfo", "get_callgraph"]

#: Registration decorators / direct registrars mapped to their registry kind.
_REGISTRAR_KINDS = {
    "register_attack": "attack",
    "register_mechanism": "mechanism",
    "register_metric": "metric",
    "register_world": "world",
}

#: Registry object names mapped to their kind (for ``ATTACKS.register(...)``).
_REGISTRY_OBJECTS = {
    "ATTACKS": "attack",
    "MECHANISMS": "mechanism",
    "METRICS": "metric",
    "WORLDS": "world",
}

#: Spec-consuming call tails: ``make_attack("poi-retrieval:radius=100")``.
_FACTORY_CALLS = {
    "make_attack": "attack",
    "make_mechanism": "mechanism",
    "make_metric": "metric",
    "make_world": "world",
}

_CREATE_METHODS = {"create", "create_parsed"}


@dataclass
class FunctionInfo:
    """One graph node: a function, method, or class definition."""

    key: str  #: ``<logical path>::<qualname>``
    module: ParsedModule
    node: ast.AST  #: FunctionDef / AsyncFunctionDef / ClassDef
    qualname: str  #: ``f`` or ``Class.method`` or ``Class``
    name: str
    class_key: Optional[str] = None  #: owning class node, for methods

    @property
    def is_class(self) -> bool:
        return isinstance(self.node, ast.ClassDef)


@dataclass
class ClassInfo:
    key: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> function key
    base_keys: List[str] = field(default_factory=list)  #: resolved project bases


@dataclass
class _ModuleScope:
    """Per-module symbol table: top-level defs plus import bindings."""

    module: ParsedModule
    defs: Dict[str, str] = field(default_factory=dict)  #: name -> node key
    #: name -> ("module", path-or-dotted) | ("symbol", module-spec, original name)
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


def _module_slug(logical: str) -> str:
    """``src/repro/io/x.py`` -> ``src/repro/io/x`` (``__init__`` drops)."""
    slug = logical[:-3] if logical.endswith(".py") else logical
    if slug.endswith("/__init__"):
        slug = slug[: -len("/__init__")]
    return slug


class CallGraph:
    """Functions, classes, edges, and registry registrations of one index."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        #: kind -> lowercased spec name -> registered node keys
        self.registrations: Dict[str, Dict[str, List[str]]] = {}
        self._scopes: Dict[str, _ModuleScope] = {}  #: logical path -> scope
        self._slug_index: Dict[str, List[str]] = {}  #: path segment-suffix cache
        self._call_targets: Dict[int, str] = {}  #: id(ast.Call) -> resolved key

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_index(cls, index: ModuleIndex) -> "CallGraph":
        graph = cls()
        for module in index.modules:
            graph._index_module(module)
        graph._resolve_bases()
        for module in index.modules:
            graph._collect_registrations(module)
        for info in list(graph.functions.values()):
            if not info.is_class:
                graph._collect_edges(info)
        return graph

    def _index_module(self, module: ParsedModule) -> None:
        scope = _ModuleScope(module=module)
        self._scopes[module.logical] = scope
        slug = _module_slug(module.logical)
        # Register every path-segment suffix so absolute dotted imports
        # (``repro.io.sampling``) resolve inside fixture trees mounted under
        # a prefix (``tests/reprolint_fixtures/<case>/repro/io/sampling.py``).
        parts = slug.split("/")
        for i in range(len(parts)):
            self._slug_index.setdefault("/".join(parts[i:]), []).append(module.logical)

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{module.logical}::{stmt.name}"
                self.functions[key] = FunctionInfo(key, module, stmt, stmt.name, stmt.name)
                scope.defs[stmt.name] = key
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, scope, stmt)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._index_import(module, scope, stmt)

    def _index_class(self, module: ParsedModule, scope: _ModuleScope, node: ast.ClassDef) -> None:
        key = f"{module.logical}::{node.name}"
        info = ClassInfo(key=key, node=node)
        self.functions[key] = FunctionInfo(key, module, node, node.name, node.name)
        self.classes[key] = info
        scope.defs[node.name] = key
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mkey = f"{module.logical}::{node.name}.{stmt.name}"
                self.functions[mkey] = FunctionInfo(
                    mkey, module, stmt, f"{node.name}.{stmt.name}", stmt.name, class_key=key
                )
                info.methods[stmt.name] = mkey

    def _index_import(self, module: ParsedModule, scope: _ModuleScope, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    scope.imports[alias.asname] = ("module", alias.name.replace(".", "/"))
                else:
                    root = alias.name.split(".")[0]
                    scope.imports.setdefault(root, ("module", root))
            return
        assert isinstance(stmt, ast.ImportFrom)
        if stmt.level == 0:
            base = (stmt.module or "").replace(".", "/")
        else:
            package = _module_slug(module.logical).rsplit("/", 1)[0] if "/" in module.logical else ""
            if module.logical.endswith("/__init__.py"):
                package = _module_slug(module.logical)
            for _ in range(stmt.level - 1):
                package = package.rsplit("/", 1)[0] if "/" in package else ""
            base = f"{package}/{stmt.module.replace('.', '/')}" if stmt.module else package
        for alias in stmt.names:
            local = alias.asname or alias.name
            if alias.name == "*":
                continue
            scope.imports[local] = ("maybe", base, alias.name)

    def _resolve_bases(self) -> None:
        for cinfo in self.classes.values():
            finfo = self.functions[cinfo.key]
            scope = self._scopes[finfo.module.logical]
            for base in cinfo.node.bases:
                parts = _name_parts(base)
                if parts:
                    resolved = self._resolve_chain(scope, parts, ctx=None)
                    if resolved and resolved in self.classes:
                        cinfo.base_keys.append(resolved)

    # -- module / symbol resolution -------------------------------------------------

    def _resolve_module(self, path_like: str) -> Optional[_ModuleScope]:
        """A module by exact path or by path-segment suffix (shortest wins)."""
        if not path_like:
            return None
        for candidate in (f"{path_like}.py", f"{path_like}/__init__.py"):
            if candidate in self._scopes:
                return self._scopes[candidate]
        matches = self._slug_index.get(path_like, [])
        if matches:
            return self._scopes[min(matches, key=len)]
        return None

    def _resolve_symbol(
        self, module_spec: str, name: str, _visited: Optional[Set[str]] = None
    ) -> Optional[str]:
        """A def/class key for ``name`` in the module at ``module_spec``,
        chasing one-level re-exports through ``__init__`` modules."""
        scope = self._resolve_module(module_spec)
        if scope is None:
            return None
        if name in scope.defs:
            return scope.defs[name]
        visited = _visited or set()
        if scope.module.logical in visited:
            return None
        visited.add(scope.module.logical)
        entry = scope.imports.get(name)
        if entry and entry[0] == "maybe":
            _, base, original = entry
            return self._resolve_symbol(base, original, visited) or self._resolve_symbol(
                f"{base}/{original}" if base else original, name, visited
            )
        return None

    def _lookup_method(self, class_key: str, name: str, _seen: Optional[Set[str]] = None) -> Optional[str]:
        seen = _seen or set()
        if class_key in seen or class_key not in self.classes:
            return None
        seen.add(class_key)
        cinfo = self.classes[class_key]
        if name in cinfo.methods:
            return cinfo.methods[name]
        for base in cinfo.base_keys:
            found = self._lookup_method(base, name, seen)
            if found:
                return found
        return None

    def _resolve_chain(
        self, scope: _ModuleScope, parts: Sequence[str], ctx: Optional["_FunctionCtx"]
    ) -> Optional[str]:
        """Resolve a dotted reference (``helper``, ``mod.f``, ``self.m``,
        ``Class.m``, ``obj.m``) to a node key, or None for externals."""
        root = parts[0]
        if ctx is not None:
            if root in ("self", "cls") and ctx.class_key and len(parts) == 2:
                return self._lookup_method(ctx.class_key, parts[1])
            var_class = ctx.var_types.get(root)
            if var_class and len(parts) == 2:
                return self._lookup_method(var_class, parts[1])
        key = scope.defs.get(root)
        if key is None and root in scope.imports:
            entry = scope.imports[root]
            if entry[0] == "module":
                return self._resolve_in_module(entry[1], parts[1:])
            _, base, original = entry
            key = self._resolve_symbol(base, original)
            if key is None:
                # ``from a import b`` where b is a submodule, not a symbol.
                sub = f"{base}/{original}" if base else original
                if self._resolve_module(sub) is not None:
                    return self._resolve_in_module(sub, parts[1:])
        if key is None:
            return None
        if len(parts) == 1:
            return key
        if len(parts) == 2 and key in self.classes:
            return self._lookup_method(key, parts[1])
        return None

    def _resolve_in_module(self, module_spec: str, rest: Sequence[str]) -> Optional[str]:
        """Resolve ``rest`` relative to a module binding (``pkg.util.helper``)."""
        if not rest:
            return None
        # Longest module-path prefix first: ``import a.b`` then ``a.b.c.f()``.
        for split in range(len(rest) - 1, -1, -1):
            spec = "/".join([module_spec, *rest[:split]])
            target = self._resolve_module(spec)
            if target is None:
                continue
            symbol = self._resolve_symbol(spec, rest[split])
            if symbol is None:
                continue
            leftover = rest[split + 1 :]
            if not leftover:
                return symbol
            if len(leftover) == 1 and symbol in self.classes:
                return self._lookup_method(symbol, leftover[0])
            return None
        return None

    # -- registrations --------------------------------------------------------------

    def _registrar_kind(self, func: ast.AST) -> Optional[str]:
        parts = _name_parts(func)
        if not parts:
            return None
        if parts[-1] in _REGISTRAR_KINDS:
            return _REGISTRAR_KINDS[parts[-1]]
        if parts[-1] == "register":
            return _REGISTRY_OBJECTS.get(parts[-2], "any") if len(parts) >= 2 else "any"
        return None

    def _collect_registrations(self, module: ParsedModule) -> None:
        scope = self._scopes[module.logical]
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                key = scope.defs.get(stmt.name)
                for dec in stmt.decorator_list:
                    if not isinstance(dec, ast.Call):
                        continue
                    kind = self._registrar_kind(dec.func)
                    if kind and key:
                        self._register(kind, _first_str_arg(dec), key)
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if isinstance(call.func, ast.Call):
                    # Curried form: ``WORLDS.register("name")(factory)``.
                    inner = call.func
                    kind = self._registrar_kind(inner.func)
                    if kind is None:
                        continue
                    factories, name = call.args, _first_str_arg(inner)
                else:
                    # Direct form: ``register_world("name", factory)``.
                    kind = self._registrar_kind(call.func)
                    if kind is None:
                        continue
                    factories, name = call.args[1:], _first_str_arg(call)
                for arg in factories:
                    parts = _name_parts(arg)
                    if parts:
                        key = self._resolve_chain(scope, parts, ctx=None)
                        if key:
                            self._register(kind, name, key)

    def _register(self, kind: str, name: Optional[str], key: str) -> None:
        bucket = self.registrations.setdefault(kind, {})
        bucket.setdefault((name or "").lower(), []).append(key)

    def registered_factories(
        self, kind: Optional[str] = None, name: Optional[str] = None
    ) -> List[str]:
        """Node keys registered under ``name`` (all names when None) in
        registries of ``kind`` plus the unidentified-``any`` bucket."""
        kinds = [kind, "any"] if kind else list(self.registrations)
        keys: List[str] = []
        for k in kinds:
            bucket = self.registrations.get(k or "", {})
            if name is None:
                for registered in bucket.values():
                    keys.extend(registered)
            else:
                keys.extend(bucket.get(name.lower(), []))
        return keys

    # -- edges ----------------------------------------------------------------------

    def _collect_edges(self, info: FunctionInfo) -> None:
        scope = self._scopes[info.module.logical]
        ctx = _FunctionCtx(class_key=info.class_key)
        self._infer_var_types(info, scope, ctx)
        out = self.edges.setdefault(info.key, set())
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                resolved = self._resolve_call(scope, ctx, node)
                if resolved:
                    out.add(resolved)
                    self._call_targets[id(node)] = resolved
                out.update(self._registry_edges(node))
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                # Address-taken: ``pool.map(_evaluate, ...)`` means called.
                key = self._resolve_chain(scope, [node.id], ctx)
                if key:
                    out.add(key)

    def _infer_var_types(self, info: FunctionInfo, scope: _ModuleScope, ctx: "_FunctionCtx") -> None:
        args = getattr(info.node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                cls = self._annotation_class(scope, arg.annotation)
                if cls:
                    ctx.var_types[arg.arg] = cls
        for node in ast.walk(info.node):
            target: Optional[str] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                cls = self._annotation_class(scope, node.annotation)
                if cls:
                    ctx.var_types[node.target.id] = cls
                continue
            if target is None or not isinstance(value, ast.Call):
                continue
            parts = _name_parts(value.func)
            if not parts:
                continue
            resolved = self._resolve_chain(scope, parts, ctx)
            if resolved in self.classes:
                ctx.var_types[target] = resolved
            elif resolved in self.functions:
                # ``store = WorldStore.open(p)`` via the return annotation.
                returns = getattr(self.functions[resolved].node, "returns", None)
                cls = self._annotation_class(self._scopes[self.functions[resolved].module.logical], returns)
                if cls:
                    ctx.var_types[target] = cls

    def _annotation_class(self, scope: _ModuleScope, annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            name = annotation.value.strip().split("[")[0]
            parts: Optional[List[str]] = name.split(".") if name.isidentifier() or "." in name else None
        else:
            parts = _name_parts(annotation)
        if not parts:
            return None
        resolved = self._resolve_chain(scope, parts, ctx=None)
        return resolved if resolved in self.classes else None

    def _resolve_call(self, scope: _ModuleScope, ctx: "_FunctionCtx", call: ast.Call) -> Optional[str]:
        parts = _name_parts(call.func)
        if not parts:
            return None
        return self._resolve_chain(scope, parts, ctx)

    def _registry_edges(self, call: ast.Call) -> Set[str]:
        parts = _name_parts(call.func)
        if not parts:
            return set()
        kind: Optional[str] = None
        matched = False
        if parts[-1] in _FACTORY_CALLS:
            kind, matched = _FACTORY_CALLS[parts[-1]], True
        elif parts[-1] in _CREATE_METHODS and len(parts) >= 2:
            matched = True
            kind = _REGISTRY_OBJECTS.get(parts[-2])
        if not matched or not call.args:
            return set()
        spec = call.args[0]
        if isinstance(spec, ast.Constant) and isinstance(spec.value, str):
            keys: Set[str] = set()
            for part in spec.value.split("|"):
                name = part.split(":", 1)[0].strip()
                if name:
                    keys.update(self.registered_factories(kind, name))
            return keys
        # Dynamic spec: every factory of that kind is potentially constructed.
        return set(self.registered_factories(kind))

    # -- queries --------------------------------------------------------------------

    def call_target(self, call: ast.Call) -> Optional[str]:
        """The resolved node key for a call seen during edge collection."""
        return self._call_targets.get(id(call))

    def functions_named(self, name: str, *path_patterns: str) -> List[str]:
        """Keys of functions called ``name``, optionally scoped by path."""
        return [
            info.key
            for info in self.functions.values()
            if info.name == name
            and not info.is_class
            and (not path_patterns or info.module.matches(*path_patterns))
        ]

    def reachable(
        self, roots: Iterable[str], expand_instances: bool = True
    ) -> Dict[str, Optional[str]]:
        """BFS parent map from ``roots``; visiting a class node also enqueues
        its methods when ``expand_instances`` (constructed on this path means
        its methods run on this path)."""
        parents: Dict[str, Optional[str]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            key = queue.popleft()
            targets = set(self.edges.get(key, ()))
            if expand_instances and key in self.classes:
                targets.update(self.classes[key].methods.values())
            for target in sorted(targets):
                if target not in parents:
                    parents[target] = key
                    queue.append(target)
        return parents

    def path_to(self, parents: Dict[str, Optional[str]], key: str) -> List[str]:
        """Root-first chain of node keys leading to ``key``."""
        chain: List[str] = []
        cursor: Optional[str] = key
        while cursor is not None and cursor not in chain:
            chain.append(cursor)
            cursor = parents.get(cursor)
        return list(reversed(chain))

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every non-class node, in deterministic order."""
        for key in sorted(self.functions):
            info = self.functions[key]
            if not info.is_class:
                yield info


@dataclass
class _FunctionCtx:
    class_key: Optional[str] = None
    var_types: Dict[str, str] = field(default_factory=dict)  #: name -> class key


def _first_str_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def _name_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-Name-rooted expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def get_callgraph(index: ModuleIndex) -> CallGraph:
    """The (cached) call graph for an index; built once per analysis run."""
    graph = getattr(index, "_callgraph", None)
    if graph is None:
        graph = CallGraph.from_index(index)
        index._callgraph = graph  # type: ignore[attr-defined]
    return graph
