"""Small AST helpers shared by the rule passes."""

from __future__ import annotations

import ast
import copy
import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "import_aliases",
    "dotted_chain",
    "iter_scoped_nodes",
    "enclosing_def_line",
    "node_fingerprint",
    "literal_strings",
]


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted origin they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as nr`` -> ``{"nr": "numpy.random"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_chain(node: ast.AST, aliases: Optional[Dict[str, str]] = None) -> Optional[List[str]]:
    """``np.random.default_rng`` -> ``["numpy", "random", "default_rng"]``.

    Attribute chains rooted at a Name are resolved through ``aliases``;
    anything else (calls, subscripts) returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        parts.extend(reversed(aliases[root].split(".")))
    else:
        parts.append(root)
    return list(reversed(parts))


#: Node types pushed onto the scope stack: lexical scopes plus loops and
#: comprehensions, so rules can ask "am I inside a loop?" from the stack.
_STACKED = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def iter_scoped_nodes(tree: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield ``(node, stack)``; the stack holds enclosing defs, classes,
    loops and comprehensions (consumers filter by node type)."""

    def visit(node: ast.AST, stack: Tuple[ast.AST, ...]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, _STACKED):
                yield from visit(child, stack + (child,))
            else:
                yield from visit(child, stack)

    yield from visit(tree, ())


def enclosing_def_line(stack: Tuple[ast.AST, ...]) -> Optional[int]:
    """Line of the innermost enclosing function def (for def-line waivers)."""
    for node in reversed(stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node.lineno
    return None


def node_fingerprint(node: ast.AST) -> str:
    """A short, comment- and docstring-insensitive hash of a def's structure.

    Used by the cache-key drift rule to pin serializer code to the committed
    contract: formatting and documentation edits do not change the hash, any
    structural edit does.
    """
    clone = copy.deepcopy(node)
    body = getattr(clone, "body", None)
    if (
        isinstance(body, list)
        and body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        del body[0]
    dump = ast.dump(clone, annotate_fields=False, include_attributes=False)
    return hashlib.sha1(dump.encode("utf-8")).hexdigest()[:16]


def literal_strings(node: ast.AST) -> Iterator[Tuple[str, int]]:
    """Every string literal under ``node`` (including inside tuples/lists)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value, child.lineno
