"""reprolint: AST-based static enforcement of the engine's contracts.

The evaluation engine rests on invariants that runtime tests can only probe
after the fact — bitwise-identical rows across scheduler backends, stable
versioned cell-cache keys, vectorized attacks pinned to scalar
``engine="reference"`` oracles.  This package checks them *statically*, as a
whole-program pass over the repository's parsed ASTs, so a violation is a
lint error at review time instead of a silent drift discovered in production.

Nine project-specific rule families run over a shared
:class:`~repro.analysis.index.ModuleIndex`:

* **R1 determinism** — no unseeded RNG or wall-clock reads in
  cell-computation modules (``attacks/``, ``baselines/``, ``geo/``,
  ``mixzones/``, ``metrics/``, ``datagen/``, ``core/`` and the engine
  modules); randomness must thread an explicit ``numpy.random.Generator``
  or seed.
* **R2 cache-key drift** — the ``ExperimentSpec`` field set and the
  cell-key serialization code must match the committed
  ``cache_key_contract.json`` for the current ``v<N>:`` key version, so
  adding a spec field or editing the serializer without bumping the version
  is a lint error, not a silent always-miss.
* **R3 columnar discipline** — per-point Python loops and scalar distance
  calls in hot-path modules are findings unless the enclosing function is
  (reachable only from) an ``engine="reference"`` oracle or carries a
  waiver; the rule doubles as the inventory of scalar residuals.
* **R4 registry integrity** — every ``register_*`` name is unique and
  parseable, and every spec string used by runners, tests and benchmarks
  resolves to a registered component.
* **R5 spawn-safety** — no module-level mutable state or closures captured
  into scheduler-backend payloads that would not survive a fresh-interpreter
  spawn.
* **R6 streaming incrementality** — streaming ``update()`` paths must stay
  O(window), never rescanning unbounded history state.
* **R7 seed flow** — the interprocedural extension of R1: every RNG draw
  *reachable* (over the project :mod:`~repro.analysis.callgraph`) from a
  cell-computation root — registered factories, ``_evaluate_group``, worker
  entry points — must use the threaded spec seed, whatever module it lives
  in.
* **R8 shared-array mutation** — arrays born from ``columnar()`` /
  ``WorldStore`` memmap views must not flow (per the forward taint engine
  in :mod:`~repro.analysis.dataflow`) into in-place mutation — ``sort()``,
  ``+=``, slice assignment, ``out=`` — without an explicit ``.copy()``.
* **R9 handle lifecycle** — sqlite connections, sockets, file handles and
  ``WorldStoreWriter``s must be closed/finalized on all paths (``with`` or
  a ``finally:``), with escape analysis for ownership transfer; findings on
  worker-reachable paths carry the call chain.

Run it as a CLI (non-zero exit on non-baselined findings)::

    python -m repro.analysis src tests benchmarks
    python -m repro.analysis --format json src
    python -m repro.analysis --format sarif --output reprolint.sarif src
    python -m repro.analysis --list-rules

A committed ``tools/reprolint-baseline.json`` (shrink-only, like the mypy
ratchet; see :mod:`~repro.analysis.baseline`) is picked up automatically:
only findings outside it fail the run, and ``--update-baseline`` refuses
to grow it.

Waive a single finding inline with a comment on the offending line (or on
the ``def`` line of its enclosing function)::

    total = sum(x for x in values)  # repro: allow=R3 -- justification

The linter depends only on the standard library (``ast``/``argparse``/
``difflib``) — it never imports the code under analysis, so it runs even
when that code would not.
"""

from .findings import Finding, format_findings
from .index import ModuleIndex
from .rules import ALL_RULES, get_rules

__all__ = ["Finding", "format_findings", "ModuleIndex", "ALL_RULES", "get_rules", "run_analysis"]


def run_analysis(paths, rules=None, index=None):
    """Parse ``paths`` and run ``rules`` (default: all) over them.

    Pass ``index`` to reuse an already-built :class:`ModuleIndex` for the
    same paths.  Returns the list of unsuppressed findings, sorted by
    (path, line, rule).
    """
    if index is None:
        index = ModuleIndex.from_paths(paths)
    findings = list(index.parse_failures)
    for rule in get_rules(rules):
        findings.extend(rule.check(index))
    kept = [f for f in findings if not index.is_waived(f)]
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))
