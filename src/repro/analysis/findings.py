"""Finding records and their text/JSON renderings."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

__all__ = ["Finding", "format_findings"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``scope_line`` is the ``def`` line of the enclosing function, when the
    finding has one — a waiver comment there suppresses the finding too
    (that is how a whole oracle or helper is waived without annotating every
    statement).
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    scope_line: Optional[int] = field(default=None, compare=False)

    def render_text(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one block per finding) or ``json``."""
    if fmt == "json":
        payload: List[dict] = []
        for finding in findings:
            row = asdict(finding)
            row.pop("scope_line", None)
            payload.append(row)
        return json.dumps({"findings": payload, "count": len(findings)}, indent=2)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}; choose 'text' or 'json'")
    if not findings:
        return ""
    lines = [finding.render_text() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
