"""``python -m repro.analysis`` — run the reprolint static analyzer."""

from .cli import main

raise SystemExit(main())
