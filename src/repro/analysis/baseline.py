"""The shrink-only findings baseline (reprolint's ratchet).

Mirrors ``tools/mypy_ratchet.py``: a committed JSON file pins the accepted
findings; the CLI exits nonzero only on findings *not* in the baseline, and
``--update-baseline`` refuses to grow the file.  Entries are keyed by
``(rule, path, message)`` with a count — line numbers drift with every
edit, message+path is stable — so two identical findings in one file need
a baseline count of two, and fixing one of them lets the ratchet shrink.

The intended steady state is an **empty** baseline: new rules land with
their real findings fixed, and the file exists so that a future rule (or a
stricter classifier) can land with its legacy findings pinned and burned
down over time instead of blocking on a flag day.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]

#: Committed next to the mypy baseline; picked up automatically when present.
DEFAULT_BASELINE_PATH = os.path.join("tools", "reprolint-baseline.json")

_VERSION = 1

Key = Tuple[str, str, str]


def _key(finding: Finding) -> Key:
    return (finding.rule, finding.path.replace(os.sep, "/"), finding.message)


def load_baseline(path: str) -> Dict[Key, int]:
    """The baseline counts; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    counts: Dict[Key, int] = {}
    for row in payload.get("findings", []):
        key = (row["rule"], row["path"], row["message"])
        counts[key] = counts.get(key, 0) + int(row.get("count", 1))
    return counts


def partition_findings(
    findings: Sequence[Finding], baseline: Dict[Key, int]
) -> Tuple[List[Finding], List[Finding], int]:
    """Split findings into (new, baselined) and count fixed baseline slots.

    Per key, the first ``baseline[key]`` findings are baselined and any
    excess is new; baseline slots with fewer live findings than their count
    contribute to ``fixed`` — the shrink the ratchet wants recorded.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    fixed = sum(count for count in remaining.values() if count > 0)
    return new, baselined, fixed


def write_baseline(path: str, findings: Sequence[Finding], force: bool = False) -> int:
    """Pin the given findings; refuses to grow an existing baseline.

    Returns the number of entries written.  Growth (more total findings
    than currently pinned) raises unless ``force`` — fix the new findings
    instead of baselining them.
    """
    counts = Counter(_key(f) for f in findings)
    if os.path.exists(path) and not force:
        existing = load_baseline(path)
        if sum(counts.values()) > sum(existing.values()):
            raise ValueError(
                f"refusing to grow the baseline ({sum(existing.values())} -> "
                f"{sum(counts.values())} findings); fix the new findings or "
                "waive them with a justified '# repro: allow=' comment"
            )
    rows = [
        {"rule": rule, "path": p, "message": message, "count": count}
        for (rule, p, message), count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "findings": rows}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return len(rows)
