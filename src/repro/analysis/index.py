"""The shared parsed-module index every rule pass runs over.

Each file is read and parsed exactly once; rules are visitors over the
resulting :class:`ParsedModule` records.  The index also owns the two pieces
of per-line metadata shared by all rules:

* **waivers** — ``# repro: allow=R3`` (or ``allow=R1,R4``) comments collected
  per physical line; a finding is suppressed when its line, or the ``def``
  line of its enclosing function, carries a waiver for its rule;
* **logical paths** — every path is normalized to POSIX form so rules can
  scope themselves by path patterns (``repro/attacks/``,
  ``repro/experiments/cache.py``) that work identically for the real tree
  and for fixture trees replicating it.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set

from .findings import Finding

__all__ = ["ParsedModule", "ModuleIndex"]

#: Directories never descended into while scanning.  ``*_fixtures`` keeps the
#: linter's own violating fixture snippets (under ``tests/``) out of a whole
#: -repo run; fixture tests point at them explicitly instead.
_SKIP_DIR_PATTERNS = re.compile(
    r"^(\.|__pycache__$|build$|dist$|node_modules$)|_fixtures$"
)

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow=([A-Za-z0-9_,]+)")


@dataclass
class ParsedModule:
    """One parsed source file plus its per-line waiver table."""

    path: str  #: the path as discovered (used in findings)
    logical: str  #: POSIX-normalized path used by rule scope predicates
    source: str
    tree: ast.AST
    waivers: Dict[int, Set[str]] = field(default_factory=dict)

    def matches(self, *patterns: str) -> bool:
        """Whether any pattern occurs in (or ends) the logical path."""
        return any(
            self.logical.endswith(p) or (p.endswith("/") and p in self.logical)
            for p in patterns
        )


def _collect_waivers(source: str) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            waivers[lineno] = rules
    return waivers


class ModuleIndex:
    """All parsed modules of one analysis run."""

    def __init__(self) -> None:
        self.modules: List[ParsedModule] = []
        self.parse_failures: List[Finding] = []
        self._by_logical_suffix_cache: Dict[str, List[ParsedModule]] = {}

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "ModuleIndex":
        index = cls()
        for path in paths:
            if os.path.isdir(path):
                for file_path in sorted(cls._walk(path)):
                    index._add_file(file_path)
            elif path.endswith(".py"):
                index._add_file(path)
        return index

    @staticmethod
    def _walk(root: str) -> Iterator[str]:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if not _SKIP_DIR_PATTERNS.search(d)]
            for name in filenames:
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)

    def _add_file(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            self.parse_failures.append(
                Finding(
                    rule="parse",
                    path=path,
                    line=line,
                    message=f"could not parse module: {exc}",
                    hint="reprolint needs every target file to be valid Python",
                )
            )
            return
        self.modules.append(
            ParsedModule(
                path=path,
                logical=path.replace(os.sep, "/"),
                source=source,
                tree=tree,
                waivers=_collect_waivers(source),
            )
        )

    # -- lookups --------------------------------------------------------------------

    def modules_matching(self, *patterns: str) -> List[ParsedModule]:
        """Modules whose logical path matches any pattern (see ParsedModule.matches)."""
        return [m for m in self.modules if m.matches(*patterns)]

    def find_one(self, suffix: str) -> "ParsedModule | None":
        """The unique module whose logical path ends with ``suffix`` (or None).

        When several match (e.g. the real tree plus a fixture tree scanned in
        one run), the shortest logical path wins — rules that pin singleton
        contract files should be run over one tree at a time.
        """
        matches = [m for m in self.modules if m.logical.endswith(suffix)]
        if not matches:
            return None
        return min(matches, key=lambda m: len(m.logical))

    # -- waivers --------------------------------------------------------------------

    def is_waived(self, finding: Finding) -> bool:
        module = next((m for m in self.modules if m.path == finding.path), None)
        if module is None:
            return False
        lines = [finding.line]
        if finding.scope_line is not None:
            lines.append(finding.scope_line)
        return any(finding.rule in module.waivers.get(line, ()) for line in lines)
