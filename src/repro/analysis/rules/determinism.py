"""R1 — determinism: no ambient randomness or wall clocks in cell computation.

Every engine cell must be a pure function of its spec strings and seed —
that is what makes rows bitwise-identical across scheduler backends and
cell-cache keys stable.  This rule flags, in cell-computation modules, any
call that draws entropy or time from the environment instead of a threaded
``numpy.random.Generator``/seed:

* the legacy global numpy RNG (``np.random.rand``, ``np.random.seed``, ...),
  ``np.random.RandomState`` (legacy, superseded by ``Generator``) and
  ``np.random.default_rng()`` *without* a seed argument;
* stdlib ``random`` module functions and unseeded ``random.Random()``
  (``random.SystemRandom`` is flagged even seeded — it is OS entropy);
* wall-clock reads: ``time.time``/``time.time_ns``, ``datetime.now``,
  ``datetime.utcnow``, ``date.today``.  Monotonic *duration* clocks
  (``time.monotonic``, ``time.perf_counter``) are allowed: scheduler
  timeouts and benchmarks need them and they never enter row content.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_chain, enclosing_def_line, import_aliases, iter_scoped_nodes
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule

__all__ = ["DeterminismRule", "classify_entropy_call", "CELL_COMPUTATION_TARGETS"]

#: Modules whose code computes (or schedules/caches) engine cells.  R1 scans
#: these module-locally; R7 (seed-flow) extends the same classifier to every
#: function *reachable* from a cell-computation root, whatever module it
#: lives in, and therefore skips these paths to avoid double reporting.
_TARGETS = (
    "repro/attacks/",
    "repro/baselines/",
    "repro/geo/",
    "repro/mixzones/",
    "repro/metrics/",
    "repro/datagen/",
    "repro/core/",
    "repro/experiments/engine.py",
    "repro/experiments/backends.py",
    "repro/experiments/cache.py",
    "repro/experiments/worker.py",
)

#: Public alias for the interprocedural seed-flow rule (R7).
CELL_COMPUTATION_TARGETS = _TARGETS

#: numpy.random attributes that draw from (or reseed) the global legacy RNG.
_NUMPY_GLOBAL_DRAWS = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "bytes", "uniform",
    "normal", "standard_normal", "poisson", "exponential", "binomial",
    "beta", "gamma", "laplace", "lognormal", "multinomial", "pareto",
    "triangular", "vonmises", "weibull", "zipf", "geometric",
}

_WALL_CLOCKS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
    ("datetime", "date", "today"),
}


class DeterminismRule(Rule):
    id = "R1"
    name = "determinism"
    description = (
        "cell-computation modules must thread an explicit Generator/seed; "
        "no global RNG, unseeded default_rng(), stdlib random or wall-clock reads"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        for module in index.modules_matching(*_TARGETS):
            aliases = import_aliases(module.tree)
            for node, stack in iter_scoped_nodes(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_chain(node.func, aliases)
                if not chain:
                    continue
                problem = classify_entropy_call(chain, node)
                if problem:
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=node.lineno,
                        message=problem,
                        hint=(
                            "thread a seeded numpy.random.Generator (or the seed "
                            "itself) through the call chain; monotonic duration "
                            "clocks (time.monotonic/perf_counter) are allowed"
                        ),
                        scope_line=enclosing_def_line(stack),
                    )


def classify_entropy_call(chain, call: ast.Call) -> str:
    """Describe why a call draws ambient entropy/time, or "" when it is fine.

    Shared by R1 (module-local, over ``CELL_COMPUTATION_TARGETS``) and R7
    (interprocedural, over everything reachable from cell roots).
    """
    dotted = ".".join(chain)
    has_args = bool(call.args or call.keywords)
    if len(chain) >= 2 and chain[0] == "numpy" and chain[1] == "random":
        tail = chain[-1]
        if tail in _NUMPY_GLOBAL_DRAWS and len(chain) == 3:
            return f"{dotted}() draws from the global numpy RNG"
        if tail == "RandomState":
            return "np.random.RandomState is legacy; use np.random.default_rng(seed)"
        if tail == "default_rng" and not has_args:
            return "np.random.default_rng() without a seed is entropy-seeded"
        return ""
    if chain[0] == "random" and len(chain) == 2 and "numpy" not in dotted:
        tail = chain[1]
        if tail == "SystemRandom":
            return "random.SystemRandom draws OS entropy (never reproducible)"
        if tail == "Random":
            return "" if has_args else "random.Random() without a seed is entropy-seeded"
        if tail[:1].islower():
            return f"stdlib random.{tail}() uses the ambient global RNG"
        return ""
    if tuple(chain) in _WALL_CLOCKS or (
        len(chain) == 2 and tuple(chain) in {t[-2:] for t in _WALL_CLOCKS if len(t) == 3}
    ):
        return f"{dotted}() reads the wall clock"
    return ""
