"""R5 — spawn safety: no mutable module state or closures into worker payloads.

The work-queue backend evaluates cells in *fresh interpreters* (spawned
workers import the module tree from scratch), and the process-pool backend
pickles payloads across process boundaries.  Two classes of code break
those contracts silently:

* **module-level mutable state** in ``repro/experiments/`` — a list/dict/
  set accumulated at import time diverges between the parent and a spawned
  worker, so the same cell can compute differently per backend.  ALL-CAPS
  constants are exempt (frozen-by-convention lookup tables like
  ``DEFAULT_MECHANISM_SPECS``); mutable literals bound to ordinary names
  are flagged.
* **closures in work-distribution payloads** — a ``lambda`` or nested
  function handed to ``Pool.map``/``imap``/``starmap``/``apply_async``/
  ``executor.submit``/``map_groups`` cannot pickle under the spawn start
  method.  Work functions must be module-level ``def``s (the engine's
  ``_evaluate_group`` pattern).  The builtin ``map(...)`` (bare name, not
  an attribute) is lazy iteration, not distribution, and is ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import enclosing_def_line, iter_scoped_nodes
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule

__all__ = ["SpawnSafetyRule"]

_TARGETS = ("repro/experiments/",)

#: Attribute-call names that distribute work across process boundaries.
_DISTRIBUTION_METHODS = {
    "map_groups", "map", "imap", "imap_unordered", "starmap",
    "starmap_async", "map_async", "apply_async", "submit",
}

_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}


def _mutable_literal_kind(value: ast.AST) -> Optional[str]:
    """What kind of mutable container a module-level value is, if any."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _MUTABLE_FACTORIES:
            return name
    return None


def _is_constant_name(name: str) -> bool:
    # ALL_CAPS constants and dunders (__all__ &c.) are frozen by convention.
    return name == name.upper() or (name.startswith("__") and name.endswith("__"))


class SpawnSafetyRule(Rule):
    id = "R5"
    name = "spawn-safety"
    description = (
        "experiments/ must not keep module-level mutable state or pass "
        "lambdas/closures into multiprocessing work-distribution calls"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        for module in index.modules_matching(*_TARGETS):
            yield from self._check_module_state(module)
            yield from self._check_payload_closures(module)

    def _check_module_state(self, module) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(module.tree):
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names = [node.target.id]
                value = node.value
            else:
                continue
            if value is None:
                continue
            kind = _mutable_literal_kind(value)
            if kind is None:
                continue
            flagged = [n for n in names if not _is_constant_name(n)]
            if not flagged:
                continue
            yield Finding(
                rule=self.id,
                path=module.path,
                line=node.lineno,
                message=(
                    f"module-level mutable {kind} {flagged[0]!r} diverges between "
                    "the parent and spawn-started workers"
                ),
                hint=(
                    "pass the state through the payload or rebuild it per call; "
                    "rename to ALL_CAPS only if it is genuinely a frozen constant"
                ),
            )

    def _check_payload_closures(self, module) -> Iterator[Finding]:
        # Names of functions defined *inside* another function (unpicklable
        # under spawn when referenced by name in a payload call).
        nested_defs = set()
        for node, stack in iter_scoped_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)) for s in stack
            ):
                nested_defs.add(node.name)

        for node, stack in iter_scoped_nodes(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _DISTRIBUTION_METHODS):
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Lambda):
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=arg.lineno,
                        message=(
                            f"lambda passed to .{func.attr}() cannot pickle under "
                            "the spawn start method"
                        ),
                        hint="hoist the work function to module level (see _evaluate_group)",
                        scope_line=enclosing_def_line(stack),
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=arg.lineno,
                        message=(
                            f"nested function {arg.id!r} passed to .{func.attr}() "
                            "closes over local state and cannot pickle under spawn"
                        ),
                        hint="hoist the work function to module level (see _evaluate_group)",
                        scope_line=enclosing_def_line(stack),
                    )
