"""R7 — seed flow: the spec seed must reach every RNG draw on cell paths.

R1 flags ambient entropy and wall clocks *module-locally*, inside the
known cell-computation modules.  R7 closes the interprocedural gap: it
walks the project call graph from every **cell-computation root** —
registered mechanism/attack/metric/world factories (and the classes they
construct), the engine's ``_evaluate_group``, and worker entry points —
and applies the same entropy classifier to every function reachable from
those roots, *wherever it lives*.  A helper two modules away that calls
``np.random.default_rng()`` without threading the spec seed breaks
bitwise row equality across backends just as surely as one inside
``repro/attacks/``; now both are findings.

Functions inside R1's own target modules are skipped here (R1 already
reports them); R7's findings carry the root and call chain that make the
draw a cell-path problem.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from ..astutil import dotted_chain, enclosing_def_line, import_aliases, iter_scoped_nodes
from ..callgraph import CallGraph, get_callgraph
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule
from .determinism import CELL_COMPUTATION_TARGETS, classify_entropy_call

__all__ = ["SeedFlowRule"]


def cell_roots(graph: CallGraph) -> Dict[str, str]:
    """Cell-computation root keys mapped to a human-readable label."""
    roots: Dict[str, str] = {}
    for kind, bucket in sorted(graph.registrations.items()):
        for name, keys in sorted(bucket.items()):
            for key in keys:
                roots.setdefault(key, f"registered {kind} {name!r}")
    for key in graph.functions_named("_evaluate_group", "engine.py"):
        roots.setdefault(key, "engine cell evaluation (_evaluate_group)")
    for key in graph.functions_named("main", "worker.py"):
        roots.setdefault(key, "worker entry point (worker.main)")
    return roots


class SeedFlowRule(Rule):
    id = "R7"
    name = "seed-flow"
    description = (
        "every RNG draw reachable from a cell-computation root (registered "
        "factories, _evaluate_group, worker entry points) must use the "
        "threaded spec seed; interprocedural extension of R1"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        graph = get_callgraph(index)
        roots = cell_roots(graph)
        parents = graph.reachable(roots, expand_instances=True)
        for key in sorted(parents):
            info = graph.functions.get(key)
            if info is None or info.is_class:
                continue
            if info.module.matches(*CELL_COMPUTATION_TARGETS):
                continue  # R1's beat: module-local findings already reported
            yield from self._check_function(graph, roots, parents, info)

    def _check_function(self, graph, roots, parents, info) -> Iterator[Finding]:
        aliases = import_aliases(info.module.tree)
        chain_label = self._chain_label(graph, roots, parents, info.key)
        for node, stack in iter_scoped_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func, aliases)
            if not chain:
                continue
            problem = classify_entropy_call(chain, node)
            if not problem:
                continue
            yield Finding(
                rule=self.id,
                path=info.module.path,
                line=node.lineno,
                message=f"{problem} on a cell-computation path ({chain_label})",
                hint=(
                    "thread the spec seed (or a Generator seeded from it) "
                    "through this call chain; cells must be pure functions "
                    "of their spec strings and seed"
                ),
                scope_line=enclosing_def_line(stack) or getattr(info.node, "lineno", None),
            )

    @staticmethod
    def _chain_label(
        graph: CallGraph, roots: Dict[str, str], parents: Dict[str, Optional[str]], key: str
    ) -> str:
        chain: List[str] = graph.path_to(parents, key)
        root_label = roots.get(chain[0], graph.functions[chain[0]].qualname)
        hops = " -> ".join(graph.functions[k].qualname for k in chain)
        return f"reachable from {root_label} via {hops}"
