"""R9 — handle lifecycle: close what you open, on every path.

Sqlite connections, sockets, file handles, and ``WorldStoreWriter``s hold
OS resources that workers recycle thousands of times per run; a handle
that leaks only when an append raises is exactly the bug that survives
the happy-path test suite and kills a many-hour fan-out.  R9 checks, per
function, that every handle **created** there is either

* opened in a ``with`` statement (or handed to one, e.g.
  ``contextlib.closing``);
* **escaped** — returned, yielded, stored into an attribute/subscript
  (ownership transferred to an object with its own lifecycle, like the
  per-thread connection pool in ``SqliteCellCache``), or passed to a
  project function that closes it / to a method of another object;
* or **closed on all paths**: a ``.close()`` / ``.finalize()`` /
  ``.shutdown()`` that sits inside a ``finally:`` block.  A close on the
  straight-line path only yields the weaker "not closed on exception
  paths" finding.

Creations consumed inline (``open(p).read()``) are flagged outright;
creations nested in containers/arguments are treated as delegated.
Findings on functions reachable from worker entry points carry the call
chain — those are the leaks that multiply across the fleet.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..astutil import dotted_chain, import_aliases
from ..callgraph import CallGraph, FunctionInfo, get_callgraph
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule
from .seed_flow import cell_roots

__all__ = ["HandleLifecycleRule"]

#: Alias-resolved chains that create a handle, and what to call it.
_HANDLE_CHAINS = {
    ("sqlite3", "connect"): "sqlite3 connection",
    ("open",): "file handle",
    ("io", "open"): "file handle",
    ("socket", "socket"): "socket",
    ("socket", "create_connection"): "socket",
    ("gzip", "open"): "file handle",
    ("lzma", "open"): "file handle",
    ("bz2", "open"): "file handle",
}

#: Project classes whose instances must be finalized/closed.
_HANDLE_CLASSES = {"WorldStoreWriter": "WorldStoreWriter"}

_CLOSERS = frozenset({"close", "finalize", "shutdown"})

_MAX_CLOSER_DEPTH = 4


class HandleLifecycleRule(Rule):
    id = "R9"
    name = "handle-lifecycle"
    description = (
        "sqlite connections, sockets, file handles and WorldStoreWriters "
        "must be closed/finalized on all paths (use with, or close in a "
        "finally:), especially on paths reachable from worker entry points"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        graph = get_callgraph(index)
        parents = graph.reachable(cell_roots(graph), expand_instances=True)
        for info in graph.iter_functions():
            reach = ""
            if info.key in parents:
                chain = graph.path_to(parents, info.key)
                reach = (
                    " on a worker-reachable path ("
                    + " -> ".join(graph.functions[k].qualname for k in chain)
                    + ")"
                )
            yield from _check_function(graph, info, reach)


def _check_function(graph: CallGraph, info: FunctionInfo, reach: str) -> Iterator[Finding]:
    aliases = import_aliases(info.module.tree)
    parents = _parent_map(info.node)
    scope_line = getattr(info.node, "lineno", 1)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        label = _handle_label(graph, aliases, node)
        if label is None:
            continue
        context, name = _creation_context(parents, node)
        if context in ("with", "delegated"):
            continue
        if context == "chained":
            yield Finding(
                rule="R9",
                path=info.module.path,
                line=node.lineno,
                message=f"{label} is consumed inline and never closed{reach}",
                hint="bind it in a with statement instead of chaining off the constructor",
                scope_line=scope_line,
            )
            continue
        assert context == "tracked" and name is not None
        problem = _track_variable(graph, info, parents, node, name)
        if problem:
            yield Finding(
                rule="R9",
                path=info.module.path,
                line=node.lineno,
                message=f"{label} {problem}{reach}",
                hint=(
                    "open it in a with statement, or close/finalize it in a "
                    "finally: block so exception paths release it too"
                ),
                scope_line=scope_line,
            )


def _handle_label(graph: CallGraph, aliases: Dict[str, str], call: ast.Call) -> Optional[str]:
    chain = dotted_chain(call.func, aliases)
    if chain and tuple(chain) in _HANDLE_CHAINS:
        return f"{'.'.join(chain)}() {_HANDLE_CHAINS[tuple(chain)]}"
    # Project handle classes, by resolved constructor or by bare name.
    func = call.func
    name = func.id if isinstance(func, ast.Name) else func.attr if isinstance(func, ast.Attribute) else None
    if name in _HANDLE_CLASSES:
        return _HANDLE_CLASSES[name]
    return None


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _creation_context(
    parents: Dict[int, ast.AST], call: ast.Call
) -> Tuple[str, Optional[str]]:
    """How the handle-creating call is used syntactically.

    ``with`` / ``delegated`` need no tracking; ``chained`` is an immediate
    finding; ``tracked`` means it was bound to a simple local name.
    """
    parent = parents.get(id(call))
    if isinstance(parent, ast.withitem):
        return "with", None
    if isinstance(parent, ast.Attribute):
        return "chained", None  # open(p).read()
    if (
        isinstance(parent, ast.Assign)
        and parent.value is call
        and len(parent.targets) == 1
        and isinstance(parent.targets[0], ast.Name)
    ):
        return "tracked", parent.targets[0].id
    if isinstance(parent, ast.AnnAssign) and parent.value is call and isinstance(parent.target, ast.Name):
        return "tracked", parent.target.id
    # Return value, call argument, container element, attribute store, ...:
    # ownership is transferred somewhere with its own lifecycle.
    return "delegated", None


def _track_variable(
    graph: CallGraph,
    info: FunctionInfo,
    parents: Dict[int, ast.AST],
    creation: ast.Call,
    name: str,
) -> Optional[str]:
    """The lifecycle problem for handle ``name``, or None when sound."""
    aliases = import_aliases(info.module.tree)
    closes: List[ast.Call] = []
    creation_stmt = _enclosing_stmt(parents, creation)
    for node in ast.walk(info.node):
        if node is creation_stmt:
            continue
        if _escapes(graph, info, aliases, node, name):
            return None
        close = _is_close(graph, node, name)
        if close is not None:
            closes.append(close)
    if not closes:
        return "is never closed"
    if any(_inside_finally(parents, c) for c in closes):
        return None
    return "is not closed on exception paths (close it in a finally: block)"


def _enclosing_stmt(parents: Dict[int, ast.AST], node: ast.AST) -> ast.AST:
    cursor: ast.AST = node
    while id(cursor) in parents and not isinstance(cursor, ast.stmt):
        cursor = parents[id(cursor)]
    return cursor


def _escapes(
    graph: CallGraph, info: FunctionInfo, aliases: Dict[str, str], node: ast.AST, name: str
) -> bool:
    if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
        value = node.value
        return value is not None and _directly_exposes(value, name)
    if isinstance(node, ast.Assign):
        if any(
            isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
        ) and _directly_exposes(node.value, name):
            return True
        return False
    if isinstance(node, ast.withitem):
        # ``with closing(conn):`` — the with owns it now.
        return _mentions(node.context_expr, name)
    if isinstance(node, ast.Call):
        if not any(isinstance(a, ast.Name) and a.id == name for a in node.args):
            return False
        # Passed to a resolved project function that closes this parameter,
        # or to a method of another object (stored in its state).
        target = graph.call_target(node)
        if target is not None:
            index = next(
                i for i, a in enumerate(node.args) if isinstance(a, ast.Name) and a.id == name
            )
            return _callee_closes_param(graph, target, index, _MAX_CLOSER_DEPTH)
        func = node.func
        if isinstance(func, ast.Attribute):
            # ``handles.append(conn)`` stores it; ``json.dump(rows, fh)`` does
            # not.  An import-bound root is a plain module function; any other
            # receiver is an object method taking ownership of the handle.
            root = func.value
            return not (isinstance(root, ast.Name) and root.id in aliases)
        return False
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name for child in ast.walk(node)
    )


def _directly_exposes(node: ast.AST, name: str) -> bool:
    """Whether the expression exposes the handle *itself* (not a derived
    value like ``writer.finalize()``): the bare name, possibly wrapped in
    containers or a conditional."""
    if isinstance(node, ast.Name):
        return node.id == name
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_directly_exposes(e, name) for e in node.elts)
    if isinstance(node, ast.Dict):
        return any(v is not None and _directly_exposes(v, name) for v in node.values)
    if isinstance(node, ast.IfExp):
        return _directly_exposes(node.body, name) or _directly_exposes(node.orelse, name)
    if isinstance(node, (ast.Starred, ast.Await)):
        return _directly_exposes(node.value, name)
    return False


def _is_close(graph: CallGraph, node: ast.AST, name: str) -> Optional[ast.Call]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _CLOSERS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == name
    ):
        return node
    return None


def _callee_closes_param(graph: CallGraph, key: str, index: int, depth: int) -> bool:
    if depth <= 0:
        return False
    info = graph.functions.get(key)
    if info is None:
        return False
    if info.is_class:
        return False
    args = getattr(info.node, "args", None)
    if args is None:
        return False
    names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
    offset = 1 if names and names[0] in ("self", "cls") else 0
    if index + offset >= len(names):
        return False
    pname = names[index + offset]
    for node in ast.walk(info.node):
        if _is_close(graph, node, pname) is not None:
            return True
        if isinstance(node, ast.withitem) and _mentions(node.context_expr, pname):
            return True
        if isinstance(node, ast.Call) and any(
            isinstance(a, ast.Name) and a.id == pname for a in node.args
        ):
            target = graph.call_target(node)
            if target is not None:
                sub_index = next(
                    i for i, a in enumerate(node.args) if isinstance(a, ast.Name) and a.id == pname
                )
                if _callee_closes_param(graph, target, sub_index, depth - 1):
                    return True
    return False


def _inside_finally(parents: Dict[int, ast.AST], node: ast.AST) -> bool:
    cursor: ast.AST = node
    while id(cursor) in parents:
        parent = parents[id(cursor)]
        if isinstance(parent, ast.Try) and any(c is cursor for c in parent.finalbody):
            return True
        cursor = parent
    return False
