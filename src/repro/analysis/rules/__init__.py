"""The rule catalogue: one visitor pass per project contract."""

from __future__ import annotations

from typing import List, Optional, Sequence

from .base import Rule
from .cache_key import CacheKeyDriftRule
from .columnar import ColumnarDisciplineRule
from .determinism import DeterminismRule
from .handle_lifecycle import HandleLifecycleRule
from .registry_integrity import RegistryIntegrityRule
from .seed_flow import SeedFlowRule
from .shared_arrays import SharedArrayRule
from .spawn_safety import SpawnSafetyRule
from .streaming import StreamingIncrementalityRule

__all__ = ["Rule", "ALL_RULES", "get_rules"]

#: Rule instances in catalogue order (each is stateless; check() is pure).
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    CacheKeyDriftRule(),
    ColumnarDisciplineRule(),
    RegistryIntegrityRule(),
    SpawnSafetyRule(),
    StreamingIncrementalityRule(),
    SeedFlowRule(),
    SharedArrayRule(),
    HandleLifecycleRule(),
]


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all by default); unknown ids raise ValueError."""
    if not ids:
        return list(ALL_RULES)
    by_id = {rule.id: rule for rule in ALL_RULES}
    missing = [i for i in ids if i not in by_id]
    if missing:
        known = ", ".join(sorted(by_id))
        raise ValueError(f"unknown rule id(s) {missing}; known rules: {known}")
    return [by_id[i] for i in ids]
