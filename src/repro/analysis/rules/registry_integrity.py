"""R4 — registry integrity: registrations unique, every used spec resolves.

A whole-program pass over everything the index parsed (``src``, ``tests``
and ``benchmarks`` in CI):

* **registration side** — every ``@register_mechanism/attack/metric/world``
  (and ``MECHANISMS.register(...)``-style) name and alias must be a string
  literal that the spec grammar can parse back (lowercase, no ``:`` ``,``
  ``=`` ``|``), and must be unique within its kind across the library
  (registrations inside test files are exempt from the uniqueness check —
  tests register and unregister scratch components at runtime);
* **usage side** — every spec string literal handed to
  ``make_mechanism/attack/metric/world``, to a known registry's
  ``.create(...)``, to an ``ExperimentSpec(...)`` axis keyword, or recorded
  in ``DEFAULT_MECHANISM_SPECS``, must resolve (by its name part, case-
  insensitively, chain stages split on ``|``) to a registered name of the
  right kind.  Usages inside ``with pytest.raises(...)`` blocks are skipped
  — those exercise the unknown-name error paths on purpose.  F-strings are
  checked when the component name precedes the first interpolation.

Names registered dynamically (non-literal first argument) are outside the
static contract and are ignored; if one exists, usages of it would surface
here — waive them at the use site with an explanatory comment.
"""

from __future__ import annotations

import ast
import difflib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import enclosing_def_line, iter_scoped_nodes
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule

__all__ = ["RegistryIntegrityRule"]

_REGISTER_FUNCS = {
    "register_mechanism": "mechanism",
    "register_attack": "attack",
    "register_metric": "metric",
    "register_world": "world",
}
_REGISTRY_NAMES = {
    "MECHANISMS": "mechanism",
    "ATTACKS": "attack",
    "METRICS": "metric",
    "WORLDS": "world",
}
_MAKE_FUNCS = {
    "make_mechanism": "mechanism",
    "make_attack": "attack",
    "make_metric": "metric",
    "make_world": "world",
}
#: ExperimentSpec axis keywords whose string entries are registry specs.
#: ``worlds`` is deliberately absent: its entries may be run-time labels
#: resolved through ``EvaluationEngine.run(spec, worlds={label: world})``,
#: which a static pass cannot see — only direct ``make_world``/
#: ``WORLDS.create`` calls are checked for that kind.
_SPEC_KWARGS = {
    "mechanisms": "mechanism",
    "attacks": "attack",
    "metrics": "metric",
}

#: Characters the spec grammar reserves; a registered name containing one
#: could never round-trip through parse_spec.
_RESERVED = set(":,=|")


def _is_library_module(logical: str) -> bool:
    return "/repro/" in logical or logical.startswith("repro/")


def _name_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _leading_text(node: ast.AST) -> Optional[str]:
    """The static text of a string literal or an f-string's leading run."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _spec_name(text: str) -> Optional[str]:
    """The component name a spec resolves through, or None if undecidable."""
    head = text.split("|", 1)[0]
    if ":" in head:
        return head.split(":", 1)[0].strip()
    return head.strip()


class RegistryIntegrityRule(Rule):
    id = "R4"
    name = "registry-integrity"
    description = (
        "register_* names must be unique and spec-grammar-parseable; every "
        "spec string used by runners/tests/benchmarks must resolve"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        registered: Dict[str, Set[str]] = {k: set() for k in _REGISTER_FUNCS.values()}
        # test modules may register scratch components and use them locally
        local: Dict[Tuple[str, str], Set[str]] = {}
        registrations: List[Tuple[str, str, str, int, bool]] = []
        # kind, name (lowercased), path, line, is_library

        for module in index.modules:
            is_library = _is_library_module(module.logical)
            for node, _stack in iter_scoped_nodes(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                kind = self._registration_kind(node)
                if kind is None:
                    continue
                if not node.args:
                    continue
                names: List[Optional[str]] = [_name_literal(node.args[0])]
                for keyword in node.keywords:
                    if keyword.arg == "aliases" and isinstance(
                        keyword.value, (ast.Tuple, ast.List)
                    ):
                        names.extend(_name_literal(e) for e in keyword.value.elts)
                for name in names:
                    if name is None:
                        continue  # dynamic registration: outside the contract
                    registrations.append(
                        (kind, name.lower(), module.path, node.lineno, is_library)
                    )
                    if is_library:
                        registered[kind].add(name.lower())
                    else:
                        local.setdefault((module.path, kind), set()).add(name.lower())

        # -- registration-side checks ------------------------------------------------
        seen: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for kind, name, path, line, is_library in registrations:
            bad = sorted(c for c in _RESERVED if c in name)
            if bad or not name or name != name.strip() or name.lower() != name:
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=line,
                    message=(
                        f"{kind} name {name!r} is not spec-grammar-parseable"
                        + (f" (reserved characters: {''.join(bad)})" if bad else "")
                    ),
                    hint="registered names must be lowercase and free of : , = |",
                )
                continue
            if not is_library:
                continue
            if (kind, name) in seen:
                first_path, first_line = seen[(kind, name)]
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=line,
                    message=(
                        f"{kind} {name!r} is registered twice "
                        f"(first at {first_path}:{first_line})"
                    ),
                    hint="every registry name/alias must be unique within its kind",
                )
            else:
                seen[(kind, name)] = (path, line)

        # -- usage-side checks ---------------------------------------------------------
        for module in index.modules:
            raises_ranges = self._pytest_raises_ranges(module.tree)
            for spec_node, kind, stack in self._iter_spec_usages(module.tree):
                text = _leading_text(spec_node)
                if text is None:
                    continue
                if isinstance(spec_node, ast.JoinedStr) and ":" not in text:
                    continue  # name continues into an interpolation: undecidable
                if any(lo <= spec_node.lineno <= hi for lo, hi in raises_ranges):
                    continue
                if not registered[kind]:
                    continue  # no registrations of this kind under analysis
                known = registered[kind] | local.get((module.path, kind), set())
                for stage in text.split("|"):
                    name = _spec_name(stage)
                    if not name or name.lower() in known:
                        continue
                    close = difflib.get_close_matches(
                        name.lower(), sorted(registered[kind]), n=1
                    )
                    hint = f"did you mean {close[0]!r}?" if close else (
                        f"registered {kind}s: " + ", ".join(sorted(registered[kind]))
                    )
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=spec_node.lineno,
                        message=f"spec {stage.strip()!r} names an unregistered {kind}",
                        hint=hint,
                        scope_line=enclosing_def_line(stack),
                    )

    # -- collection helpers -------------------------------------------------------

    @staticmethod
    def _registration_kind(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _REGISTER_FUNCS:
            return _REGISTER_FUNCS[func.id]
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "register"
            and isinstance(func.value, ast.Name)
            and func.value.id in _REGISTRY_NAMES
        ):
            return _REGISTRY_NAMES[func.value.id]
        return None

    @staticmethod
    def _pytest_raises_ranges(tree: ast.AST) -> List[Tuple[int, int]]:
        ranges: List[Tuple[int, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "raises"
                ):
                    end = max(
                        (getattr(s, "end_lineno", s.lineno) for s in node.body),
                        default=node.lineno,
                    )
                    ranges.append((node.lineno, end))
        return ranges

    def _iter_spec_usages(self, tree: ast.AST):
        """Yield (string node, kind, scope stack) for every checked spec usage."""
        for node, stack in iter_scoped_nodes(tree):
            if isinstance(node, ast.Call):
                kind = self._call_kind(node)
                if kind and node.args:
                    yield node.args[0], kind, stack
                if self._is_experiment_spec_call(node):
                    for keyword in node.keywords:
                        axis_kind = _SPEC_KWARGS.get(keyword.arg or "")
                        if axis_kind:
                            yield from self._axis_strings(keyword.value, axis_kind, stack)
            elif isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "DEFAULT_MECHANISM_SPECS" in targets and isinstance(
                    node.value, ast.Dict
                ):
                    for value in node.value.values:
                        yield value, "mechanism", stack

    @staticmethod
    def _call_kind(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _MAKE_FUNCS:
            return _MAKE_FUNCS[func.id]
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "create"
            and isinstance(func.value, ast.Name)
            and func.value.id in _REGISTRY_NAMES
        ):
            return _REGISTRY_NAMES[func.value.id]
        return None

    @staticmethod
    def _is_experiment_spec_call(call: ast.Call) -> bool:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name == "ExperimentSpec"

    @staticmethod
    def _axis_strings(node: ast.AST, kind: str, stack):
        """String specs inside an axis literal: lists/tuples, (label, spec)
        pairs, and metric-group tuples."""
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                if isinstance(element, ast.Tuple) and element.elts:
                    if kind == "metric":
                        # a metric *group*: every member is its own spec
                        for member in element.elts:
                            yield member, kind, stack
                    elif len(element.elts) == 2:
                        # a (label, spec-or-object) pair: check the spec slot
                        yield element.elts[1], kind, stack
                else:
                    yield element, kind, stack
