"""The rule interface."""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..index import ModuleIndex

__all__ = ["Rule"]


class Rule:
    """One invariant checked as a pass over the module index.

    Subclasses set ``id`` (the waiver token, e.g. ``"R1"``), ``name`` and
    ``description`` (both shown by ``--list-rules``) and implement
    :meth:`check`, yielding findings; waiver suppression is applied by the
    caller so rules never need to consult the waiver tables themselves.
    """

    id: str = "?"
    name: str = "?"
    description: str = ""

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        raise NotImplementedError
