"""R6 — streaming incrementality: ``update()`` must not rescan history.

The streaming tier (``repro.streaming``) promises O(window) work per
arriving point: every incremental consumer exposes ``update(point)`` and
the state it scans on each call must be *pruned* — a sliding window, a
closable bucket — never the full history.  This rule flags the canonical
regression: a ``for`` loop or comprehension inside an ``update()`` method
(or a private helper reachable from one) that iterates an instance
buffer the class only ever grows (``append``/``add``/``extend``/item
assignment) and never prunes (``pop``/``popleft``/``remove``/``clear``/
``del``/reassignment).  Such a loop makes per-point cost O(history) and
turns the streaming tier into a re-run of the batch attack.

Scope notes:

* Bucket access is fine — ``self._grid[cell]`` or ``self._index.get(key)``
  selects one cell of a spatial index, it does not walk the history.
* Finalize paths are exempt: ``finalize()`` legitimately folds whatever
  state remains, and it runs once per stream, not once per point.
* An append-only buffer that ``update()`` never *iterates* is legal too
  (DJ-Cluster retains all stationary fixes by construction; it probes
  them through its eps-grid, never by scanning).

Genuinely intrinsic full-history scans can be waived with
``# repro: allow=R6 -- reason`` on the loop or the enclosing ``def``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule

__all__ = ["StreamingIncrementalityRule"]

_TARGETS = ("repro/streaming/",)

#: Method calls on an instance buffer that grow it.
_GROW_METHODS = {"append", "appendleft", "add", "extend", "insert", "setdefault", "update"}
#: Method calls that shrink it — evidence the buffer is a bounded window.
_PRUNE_METHODS = {"pop", "popleft", "popitem", "remove", "discard", "clear"}
#: Dict/set views through which iteration still walks the whole container.
_VIEW_METHODS = {"items", "keys", "values", "copy"}
#: Builtins through which an iterable still walks its argument element-wise.
_ITER_WRAPPERS = {"zip", "enumerate", "reversed", "sorted", "iter", "list", "tuple", "set", "frozenset", "map", "filter"}
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _self_attr(node: ast.AST) -> Optional[str]:
    """The instance attribute a ``self.X...`` chain hangs off, else ``None``.

    ``self._window`` -> ``_window``; ``self._users[k].xs`` -> ``_users``
    (growing a bucket still grows the container that holds it); ``st.xs``
    (attribute of a local) -> ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            return node.attr
        node = node.value
    return None


class _ClassProfile:
    """Grow/prune inventory and update-reachability for one class body."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.grown: Set[str] = set()
        self.pruned: Set[str] = set()
        calls: Dict[str, Set[str]] = {name: set() for name in self.methods}

        for name, method in self.methods.items():
            for sub in ast.walk(method):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    owner = sub.func.value
                    if isinstance(owner, ast.Name) and owner.id in ("self", "cls"):
                        if sub.func.attr in self.methods:
                            calls[name].add(sub.func.attr)
                    attr = _self_attr(owner)
                    if attr is not None:
                        if sub.func.attr in _GROW_METHODS:
                            self.grown.add(attr)
                        elif sub.func.attr in _PRUNE_METHODS:
                            self.pruned.add(attr)
                elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                            if attr is not None:
                                self.grown.add(attr)
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in ("self", "cls")
                            and name != "__init__"
                            and isinstance(sub, ast.Assign)
                        ):
                            # Reassignment outside __init__ resets the buffer.
                            self.pruned.add(target.attr)
                elif isinstance(sub, ast.Delete):
                    for target in sub.targets:
                        if isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                            if attr is not None:
                                self.pruned.add(attr)

        # Fixpoint: update() itself plus every method transitively called
        # from it via self/cls — those all run once per arriving point.
        reachable = {name for name in self.methods if name == "update"}
        frontier = list(reachable)
        while frontier:
            for callee in calls.get(frontier.pop(), ()):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        self.update_reachable = reachable

    def unbounded(self, attr: str) -> bool:
        return attr in self.grown and attr not in self.pruned


class StreamingIncrementalityRule(Rule):
    id = "R6"
    name = "streaming-incrementality"
    description = (
        "streaming update() paths must stay O(window): iterating an instance "
        "buffer that only ever grows makes per-point cost O(history)"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        for module in index.modules_matching(*_TARGETS):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module.path, _ClassProfile(node))

    def _check_class(self, path: str, profile: _ClassProfile) -> Iterator[Finding]:
        for name in sorted(profile.update_reachable):
            method = profile.methods[name]
            aliases = self._local_aliases(method)
            for sub in ast.walk(method):
                if isinstance(sub, ast.For):
                    iterables: List[ast.AST] = [sub.iter]
                elif isinstance(sub, _COMPREHENSIONS):
                    iterables = [gen.iter for gen in sub.generators]
                else:
                    continue
                for it in iterables:
                    attr = self._iterated_attr(it, aliases)
                    if attr is not None and profile.unbounded(attr):
                        yield Finding(
                            rule=self.id,
                            path=path,
                            line=sub.lineno,
                            message=(
                                f"update() path {profile.node.name}.{name} iterates "
                                f"self.{attr}, which is grown but never pruned — "
                                "per-point cost is O(history), not O(window)"
                            ),
                            hint=(
                                "evict processed entries (pop/popleft/del/clear) so "
                                "the loop walks a sliding window, or waive with "
                                '"# repro: allow=R6 -- reason" if the full scan '
                                "is intrinsic to the attack"
                            ),
                            scope_line=method.lineno,
                        )
                        break

    @staticmethod
    def _local_aliases(method: ast.AST) -> Dict[str, str]:
        """Plain ``name = self.X`` bindings (one level, no reassignment checks)."""
        aliases: Dict[str, str] = {}
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(sub.value, ast.Attribute)
                    and isinstance(sub.value.value, ast.Name)
                    and sub.value.value.id in ("self", "cls")
                ):
                    aliases[target.id] = sub.value.attr
        return aliases

    @classmethod
    def _iterated_attr(
        cls, iterable: ast.AST, aliases: Dict[str, str]
    ) -> Optional[str]:
        """The instance buffer an iterable walks in full, if any.

        Follows iteration wrappers (``sorted``/``zip``/``enumerate``/...),
        dict views (``.items()``/``.values()``) and ``name = self.X``
        aliases; stops at subscripts and ``.get()``-style calls — selecting
        one bucket of an index is exactly the incremental access pattern
        this rule exists to encourage.
        """
        if isinstance(iterable, ast.Name):
            return aliases.get(iterable.id)
        if isinstance(iterable, ast.Attribute):
            if isinstance(iterable.value, ast.Name) and iterable.value.id in (
                "self",
                "cls",
            ):
                return iterable.attr
            return None
        if isinstance(iterable, (ast.Tuple, ast.List)):
            for element in iterable.elts:
                found = cls._iterated_attr(element, aliases)
                if found:
                    return found
            return None
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id in _ITER_WRAPPERS:
                for arg in iterable.args:
                    found = cls._iterated_attr(arg, aliases)
                    if found:
                        return found
                return None
            if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
                return cls._iterated_attr(func.value, aliases)
        return None
