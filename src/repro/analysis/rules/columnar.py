"""R3 — columnar discipline: no per-point Python loops in hot paths.

Every attack and mechanism hot path was ported onto the columnar kernel
layer (``repro.geo.kernels``); the scalar implementations survive only as
``engine="reference"`` oracles.  This rule keeps it that way: in hot-path
modules (``attacks/``, ``mixzones/``, ``baselines/``) it flags

* ``for``/``while`` loops and comprehensions that iterate directly over
  per-point trajectory arrays (``.lats``/``.lons``/``.timestamps``/
  ``.points``), and
* scalar per-element distance calls (``haversine``/``equirectangular``)
  evaluated inside any loop or comprehension — the canonical sign of a
  point-at-a-time Python path (use ``haversine_array`` on the whole batch),

unless the code is oracle scope.  Oracle scope is computed per module as a
fixpoint: functions whose name contains ``reference`` or ``scalar``, code
inside an ``engine == "reference"`` branch, functions called from such a
branch, and functions reachable *only* from oracle scope.  The surviving
findings are exactly the inventory of scalar residuals.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import enclosing_def_line, iter_scoped_nodes
from ..findings import Finding
from ..index import ModuleIndex, ParsedModule
from .base import Rule

__all__ = ["ColumnarDisciplineRule"]

_TARGETS = ("repro/attacks/", "repro/mixzones/", "repro/baselines/")

_POINT_ATTRS = {"lats", "lons", "timestamps", "points"}
#: Builtins through which an iterable still walks its argument element-wise.
_ITER_WRAPPERS = {"zip", "enumerate", "reversed", "sorted", "iter", "list", "tuple", "range", "len", "map", "filter"}
_SCALAR_DISTANCE = {"haversine", "equirectangular"}
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_LOOPS = (ast.For, ast.While, *_COMPREHENSIONS)


def _is_reference_test(test: ast.AST) -> bool:
    """Whether an if-test compares something to the string "reference"."""
    for node in ast.walk(test):
        if isinstance(node, ast.Constant) and node.value == "reference":
            return True
    return False


class _ModuleOracle:
    """Oracle-scope resolution for one module (see the module docstring)."""

    def __init__(self, module: ParsedModule) -> None:
        self.reference_ranges: List[Tuple[int, int]] = []
        functions: Dict[str, ast.AST] = {}
        # every local call site: callee -> [(caller function name, line)]
        call_sites: Dict[str, List[Tuple[Optional[str], int]]] = {}
        roots: Set[str] = set()

        for node, stack in iter_scoped_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
                if "reference" in node.name.lower() or "scalar" in node.name.lower():
                    roots.add(node.name)
            elif isinstance(node, ast.If) and _is_reference_test(node.test):
                # The body (taken when engine == "reference") is oracle scope.
                for stmt in node.body:
                    end = getattr(stmt, "end_lineno", stmt.lineno)
                    self.reference_ranges.append((stmt.lineno, end))
            elif isinstance(node, ast.Call):
                func = node.func
                callee = None
                if isinstance(func, ast.Name):
                    callee = func.id
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                ):
                    callee = func.attr
                if callee:
                    call_sites.setdefault(callee, []).append(
                        (self._enclosing_function_name(stack), node.lineno)
                    )

        # Fixpoint: a *private* helper is oracle when every one of its (at
        # least one) call sites sits in oracle scope — inside a reference
        # branch or inside an oracle function.  Shared helpers called from
        # both engines therefore stay hot, as do public entry points (callers
        # outside the module are invisible to this pass).
        oracle = {name for name in roots if name in functions}
        changed = True
        while changed:
            changed = False
            for name in functions:
                if name in oracle or not name.startswith("_"):
                    continue
                sites = call_sites.get(name, [])
                if sites and all(
                    caller in oracle
                    or any(lo <= line <= hi for lo, hi in self.reference_ranges)
                    for caller, line in sites
                ):
                    oracle.add(name)
                    changed = True
        self.oracle_functions = oracle

    @staticmethod
    def _enclosing_function_name(stack: Tuple[ast.AST, ...]) -> Optional[str]:
        for node in reversed(stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node.name
        return None

    def covers(self, line: int, stack: Tuple[ast.AST, ...]) -> bool:
        if any(lo <= line <= hi for lo, hi in self.reference_ranges):
            return True
        name = self._enclosing_function_name(stack)
        return name is not None and name in self.oracle_functions


class ColumnarDisciplineRule(Rule):
    id = "R3"
    name = "columnar-discipline"
    description = (
        "hot-path modules must not walk points in Python: per-point loops and "
        "scalar distance calls in loops are reserved for engine=\"reference\" oracles"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        for module in index.modules_matching(*_TARGETS):
            oracle = _ModuleOracle(module)
            for node, stack in iter_scoped_nodes(module.tree):
                in_loop = any(isinstance(s, _LOOPS) for s in stack) or isinstance(
                    node, _LOOPS
                )
                if isinstance(node, _COMPREHENSIONS) or isinstance(node, ast.For):
                    iterables = (
                        [node.iter]
                        if isinstance(node, ast.For)
                        else [gen.iter for gen in node.generators]
                    )
                    for it in iterables:
                        attr = self._point_attr(it)
                        if attr and not oracle.covers(node.lineno, stack):
                            yield Finding(
                                rule=self.id,
                                path=module.path,
                                line=node.lineno,
                                message=(
                                    f"per-point loop over trajectory array "
                                    f"(.{attr}) in a hot-path module"
                                ),
                                hint=(
                                    "use the columnar kernels (repro.geo.kernels) "
                                    "over the dataset's flattened view, or keep the "
                                    "loop in an engine=\"reference\" oracle"
                                ),
                                scope_line=enclosing_def_line(stack),
                            )
                            break
                if (
                    isinstance(node, ast.Call)
                    and in_loop
                    and self._scalar_distance_name(node) is not None
                    and not oracle.covers(node.lineno, stack)
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"scalar {self._scalar_distance_name(node)}() call "
                            "inside a loop in a hot-path module"
                        ),
                        hint=(
                            "batch the distances with haversine_array/"
                            "equirectangular_array over numpy arrays"
                        ),
                        scope_line=enclosing_def_line(stack),
                    )

    @classmethod
    def _point_attr(cls, iterable: ast.AST) -> Optional[str]:
        """The per-point attribute an iterable walks element-wise, if any.

        Follows iteration wrappers (``zip``/``enumerate``/``range(len(..))``,
        slices, method calls like ``.tolist()``) but not arbitrary calls — a
        point array passed as an *argument* to a batched helper is not being
        iterated by this loop.
        """
        if isinstance(iterable, ast.Attribute):
            if iterable.attr in _POINT_ATTRS:
                return iterable.attr
            return cls._point_attr(iterable.value)
        if isinstance(iterable, ast.Subscript):
            return cls._point_attr(iterable.value)
        if isinstance(iterable, (ast.Tuple, ast.List)):
            for element in iterable.elts:
                found = cls._point_attr(element)
                if found:
                    return found
            return None
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id in _ITER_WRAPPERS:
                for arg in iterable.args:
                    found = cls._point_attr(arg)
                    if found:
                        return found
                return None
            if isinstance(func, ast.Attribute):
                # a method call on the array itself (.tolist(), .flatten(), ...)
                return cls._point_attr(func.value)
        return None

    @staticmethod
    def _scalar_distance_name(call: ast.Call) -> Optional[str]:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name if name in _SCALAR_DISTANCE else None
