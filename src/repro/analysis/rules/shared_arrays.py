"""R8 — shared-array mutation: columnar/memmap views are read-only.

``MobilityDataset.columnar()`` and ``WorldStore`` hand out *shared* array
views — the same pages every worker on the host maps, the buffers the
engine explicitly never copies.  Mutating one in place (``sort()``,
``+=``, slice assignment, ``out=``) corrupts every other reader and, for
memmapped stores, the on-disk artifact itself.  The runtime guards the
columnar views with ``writeable = False``, but memmap columns and code
paths that slice before mutating escape that net — and the crash arrives
far from the bug.

R8 runs the forward taint engine over every scanned function:

* **sources** — ``.columnar()`` calls, ``np.memmap(...)``, and loads of
  the canonical shared column attributes (``.lats``, ``.lons``,
  ``.timestamps``, ``.user_index``, ``.offsets``);
* **sanitizers** — ``.copy()`` / ``.astype()`` / ``np.array`` /
  ``np.copy`` (``np.asarray`` is *not* one: it aliases);
* **sinks** — augmented assignment, subscript/slice stores, in-place
  mutator methods, ``out=`` keywords, and ``np.copyto``-style writers —
  including interprocedurally, when a tainted array is passed to a
  project function whose parameter reaches such a sink.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..callgraph import get_callgraph
from ..dataflow import TaintEngine, TaintPolicy
from ..findings import Finding
from ..index import ModuleIndex
from .base import Rule

__all__ = ["SharedArrayRule"]

#: The canonical shared column attributes of ColumnarTraces / WorldStore.
_SHARED_ATTRS = frozenset({"lats", "lons", "timestamps", "user_index", "offsets"})

#: ndarray methods that mutate their receiver in place.
_MUTATORS = frozenset({"sort", "partition", "fill", "resize", "put", "itemset", "byteswap"})


def _source_call(chain: Optional[List[str]], call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute) and call.func.attr == "columnar":
        return "a columnar() view"
    if chain and tuple(chain) == ("numpy", "memmap"):
        return "a numpy memmap"
    return None


_POLICY = TaintPolicy(
    source_call=_source_call,
    source_attrs=_SHARED_ATTRS,
    sanitizer_methods=frozenset({"copy", "astype", "tolist"}),
    sanitizer_chains=frozenset({("numpy", "array"), ("numpy", "copy")}),
    mutator_methods=_MUTATORS,
    out_keywords=frozenset({"out"}),
    sink_chains={
        ("numpy", "copyto"): 0,
        ("numpy", "put"): 0,
        ("numpy", "place"): 0,
        ("numpy", "putmask"): 0,
    },
)


class SharedArrayRule(Rule):
    id = "R8"
    name = "shared-array-mutation"
    description = (
        "arrays born from columnar()/WorldStore memmap views must not flow "
        "into in-place mutation (sort, +=, slice-assign, out=) without an "
        "explicit .copy(); tracked through project calls"
    )

    def check(self, index: ModuleIndex) -> Iterator[Finding]:
        graph = get_callgraph(index)
        engine = TaintEngine(graph, _POLICY)
        for info in graph.iter_functions():
            for sink in engine.findings_for(info):
                yield Finding(
                    rule=self.id,
                    path=info.module.path,
                    line=sink.line,
                    message=f"{sink.origin} flows into in-place mutation via {sink.sink}",
                    hint=(
                        "mutate an explicit copy (.copy() or np.array(x)) — "
                        "columnar()/WorldStore views are shared across workers "
                        "and, for memmaps, backed by the on-disk artifact"
                    ),
                    scope_line=sink.scope_line,
                )
