"""Trajectory simulation: turning schedules into GPS traces.

:class:`TraceSimulator` converts ground-truth daily schedules
(:mod:`repro.datagen.schedule`) into sampled GPS trajectories:

* during a visit the user is (almost) stationary at the POI, with a small
  wandering jitter — exactly the dense point clusters that POI-extraction
  attacks look for;
* between visits the user travels along the city's street route at a
  per-user speed (walking or driving), producing regularly spaced moving
  fixes;
* the whole trace is sampled at a configurable interval and then passed
  through the GPS noise model.

The simulator returns a :class:`SyntheticWorld` bundling the generated
dataset with every piece of ground truth (profiles, schedules, visits), which
is what the evaluation harness scores attacks and metrics against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.trajectory import MobilityDataset, Trajectory
from ..geo.distance import haversine, meters_per_degree
from .city import City, CityConfig, POI
from .noise import GpsNoiseConfig, GpsNoiseModel
from .schedule import DailySchedule, ScheduleConfig, ScheduleGenerator, UserProfile, Visit

if TYPE_CHECKING:
    from ..io.world_store import WorldStore

__all__ = [
    "SimulationConfig",
    "SyntheticWorld",
    "TraceSimulator",
    "generate_world",
    "iter_world_trajectories",
    "generate_world_store",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the GPS trace simulation.

    Attributes
    ----------
    sampling_interval_s:
        Time between two recorded fixes.
    walking_speed_mps / driving_speed_mps:
        Travel speeds; each user is assigned one of the two (with probability
        ``driver_fraction`` of being a driver) for all her trips.
    driver_fraction:
        Fraction of users that travel at driving speed.
    stationary_jitter_m:
        Standard deviation of the wandering movement while stopped at a POI
        (people do not stand perfectly still, and GPS drifts indoors).
    record_night:
        When false (default), fixes between the last arrival home and the next
        morning departure are not recorded, mimicking devices switched off at
        night; the home POI is still observable from the evening/morning fixes.
    max_stop_recording_s:
        GPS loggers rarely record a full 8-hour stay: indoors the signal is
        lost or the device goes to sleep.  When a ground-truth stop is longer
        than this value, only its first and last ``max_stop_recording_s / 2``
        seconds are recorded, leaving a sampling gap in the middle — the same
        session structure real GeoLife data exhibits.  The recorded edges stay
        long enough (> 20 minutes by default) for the POI-extraction attack to
        find the stop on raw data.  Set to ``inf`` to record stops in full.
    """

    sampling_interval_s: float = 60.0
    walking_speed_mps: float = 1.4
    driving_speed_mps: float = 10.0
    driver_fraction: float = 0.6
    stationary_jitter_m: float = 8.0
    record_night: bool = False
    max_stop_recording_s: float = 2700.0

    def __post_init__(self) -> None:
        if self.sampling_interval_s <= 0.0:
            raise ValueError("sampling_interval_s must be positive")
        if self.walking_speed_mps <= 0.0 or self.driving_speed_mps <= 0.0:
            raise ValueError("speeds must be positive")
        if not 0.0 <= self.driver_fraction <= 1.0:
            raise ValueError("driver_fraction must be a probability")
        if self.stationary_jitter_m < 0.0:
            raise ValueError("stationary_jitter_m must be non-negative")
        if self.max_stop_recording_s <= 0.0:
            raise ValueError("max_stop_recording_s must be positive")


@dataclass
class SyntheticWorld:
    """A generated dataset together with its complete ground truth."""

    city: City
    profiles: List[UserProfile]
    schedules: List[DailySchedule]
    dataset: MobilityDataset
    config: SimulationConfig

    def visits_of(self, user_id: str) -> List[Visit]:
        """Every ground-truth visit of a user, across all simulated days."""
        return [
            visit
            for schedule in self.schedules
            if schedule.user_id == user_id
            for visit in schedule.visits
        ]

    def true_pois_of(self, user_id: str, min_stay_s: float = 900.0) -> List[POI]:
        """Distinct POIs where the user stopped at least ``min_stay_s`` seconds.

        This is the ground truth the POI-extraction attack is scored against:
        an attack finding a cluster within the matching distance of one of
        these POIs scores a true positive.
        """
        seen: Dict[str, POI] = {}
        for visit in self.visits_of(user_id):
            if visit.duration >= min_stay_s:
                seen[visit.poi.poi_id] = visit.poi
        return list(seen.values())

    @property
    def user_ids(self) -> List[str]:
        """Identifiers of the simulated users."""
        return [p.user_id for p in self.profiles]

    def shard(self, k: int, n: int) -> "SyntheticWorld":
        """Shard ``k`` of ``n``: the sub-world of users ``k, k + n, k + 2n, ...``.

        Profiles, schedules and traces are filtered consistently, so ground
        truth stays aligned; ``n`` disjoint shards cover the world exactly
        once.
        """
        if n < 1 or not 0 <= k < n:
            raise ValueError(f"shard must satisfy 0 <= k < n, got ({k}, {n})")
        profiles = self.profiles[k::n]
        keep = {p.user_id for p in profiles}
        return SyntheticWorld(
            city=self.city,
            profiles=profiles,
            schedules=[s for s in self.schedules if s.user_id in keep],
            dataset=self.dataset.subset(
                uid for uid in (p.user_id for p in profiles) if uid in self.dataset
            ),
            config=self.config,
        )


class TraceSimulator:
    """Simulates GPS traces from a city and per-user schedules."""

    def __init__(
        self,
        city: City,
        config: Optional[SimulationConfig] = None,
        noise: Optional[GpsNoiseConfig] = None,
        seed: int = 0,
    ) -> None:
        self.city = city
        self.config = config or SimulationConfig()
        self._noise_model = GpsNoiseModel(noise or GpsNoiseConfig(seed=seed))
        self._rng = np.random.default_rng(seed)

    # -- public API -----------------------------------------------------------------

    def simulate_user(
        self, profile: UserProfile, schedules: Sequence[DailySchedule]
    ) -> Trajectory:
        """Simulate the full trace of one user over all her daily schedules."""
        cfg = self.config
        speed = (
            cfg.driving_speed_mps
            if self._rng.random() < cfg.driver_fraction
            else cfg.walking_speed_mps
        )
        times: List[float] = []
        lats: List[float] = []
        lons: List[float] = []
        for schedule in sorted(schedules, key=lambda s: s.day_index):
            self._simulate_day(profile, schedule, speed, times, lats, lons)
        if not times:
            return Trajectory.empty(profile.user_id)
        raw = Trajectory(profile.user_id, times, lats, lons)
        return self._noise_model.apply(raw)

    def simulate(
        self, profiles: Sequence[UserProfile], schedules: Sequence[DailySchedule]
    ) -> MobilityDataset:
        """Simulate every user of ``profiles`` and assemble the dataset."""
        by_user: Dict[str, List[DailySchedule]] = {}
        for schedule in schedules:
            by_user.setdefault(schedule.user_id, []).append(schedule)
        trajectories = [
            self.simulate_user(profile, by_user.get(profile.user_id, []))
            for profile in profiles
        ]
        return MobilityDataset(t for t in trajectories if len(t) > 0)

    # -- internals ------------------------------------------------------------------

    def _simulate_day(
        self,
        profile: UserProfile,
        schedule: DailySchedule,
        speed: float,
        times: List[float],
        lats: List[float],
        lons: List[float],
    ) -> None:
        cfg = self.config
        visits = list(schedule.visits)
        for i, visit in enumerate(visits):
            overnight_side = None
            if not cfg.record_night:
                if i == 0:
                    overnight_side = "morning"
                elif i == len(visits) - 1:
                    overnight_side = "evening"
            self._emit_stay(visit, overnight_side, times, lats, lons)
            if i + 1 < len(visits):
                self._emit_trip(profile, visit, visits[i + 1], speed, times, lats, lons)

    def _emit_stay(
        self,
        visit: Visit,
        overnight_side: Optional[str],
        times: List[float],
        lats: List[float],
        lons: List[float],
    ) -> None:
        """Emit stationary fixes during a visit (trimmed when overnight or long).

        ``overnight_side`` marks the visits that border the unrecorded night:
        ``"morning"`` keeps only the 30 minutes preceding the departure,
        ``"evening"`` only the 30 minutes following the arrival home; both keep
        the home POI observable without generating hours of night fixes.
        """
        cfg = self.config
        start, end = visit.arrival, visit.departure
        if overnight_side == "morning" and end - start > 1800.0:
            start = end - 1800.0
        elif overnight_side == "evening" and end - start > 1800.0:
            end = start + 1800.0
        if end <= start:
            return
        # Long stops are recorded only at their edges (device sleeps indoors),
        # which produces the per-trip session structure of real GPS logs.
        windows: List[Tuple[float, float]]
        if end - start > cfg.max_stop_recording_s:
            half = cfg.max_stop_recording_s / 2.0
            windows = [(start, start + half), (end - half, end)]
        else:
            windows = [(start, end)]
        lat_m, lon_m = meters_per_degree(visit.poi.lat)
        for window_start, window_end in windows:
            t = window_start
            while t < window_end:
                jitter_north = self._rng.normal(0.0, cfg.stationary_jitter_m)
                jitter_east = self._rng.normal(0.0, cfg.stationary_jitter_m)
                times.append(t)
                lats.append(visit.poi.lat + jitter_north / lat_m)
                lons.append(visit.poi.lon + jitter_east / lon_m)
                t += cfg.sampling_interval_s
        # Always record the departure instant so trips start from the POI.
        times.append(end)
        lats.append(visit.poi.lat)
        lons.append(visit.poi.lon)

    def _emit_trip(
        self,
        profile: UserProfile,
        from_visit: Visit,
        to_visit: Visit,
        speed: float,
        times: List[float],
        lats: List[float],
        lons: List[float],
    ) -> None:
        """Emit moving fixes along the street route between two visits."""
        cfg = self.config
        if to_visit.poi.poi_id == from_visit.poi.poi_id:
            return
        waypoints = self.city.route(
            from_visit.poi,
            to_visit.poi,
            via_transit=profile.commutes_via_transit,
            rng=self._rng,
        )
        # Leg lengths and cumulative distances along the route.
        leg_lengths = [
            haversine(waypoints[i][0], waypoints[i][1], waypoints[i + 1][0], waypoints[i + 1][1])
            for i in range(len(waypoints) - 1)
        ]
        total = sum(leg_lengths)
        if total <= 0.0:
            return
        available = to_visit.arrival - from_visit.departure
        travel_time = total / speed
        # If the schedule leaves less time than the trip requires, travel
        # faster (the user hurries); if it leaves more, depart later.
        depart = from_visit.departure
        if available > travel_time:
            depart = to_visit.arrival - travel_time
        else:
            travel_time = max(available, cfg.sampling_interval_s)

        t = depart
        while t < depart + travel_time:
            progress = (t - depart) / travel_time
            lat, lon = self._position_on_route(waypoints, leg_lengths, total, progress)
            times.append(t)
            lats.append(lat)
            lons.append(lon)
            t += cfg.sampling_interval_s

    @staticmethod
    def _position_on_route(
        waypoints: Sequence[Tuple[float, float]],
        leg_lengths: Sequence[float],
        total: float,
        progress: float,
    ) -> Tuple[float, float]:
        """Position at fraction ``progress`` of the route arc-length."""
        target = min(max(progress, 0.0), 1.0) * total
        acc = 0.0
        for i, leg in enumerate(leg_lengths):
            if acc + leg >= target or i == len(leg_lengths) - 1:
                f = 0.0 if leg <= 0.0 else (target - acc) / leg
                f = min(max(f, 0.0), 1.0)
                lat = waypoints[i][0] + f * (waypoints[i + 1][0] - waypoints[i][0])
                lon = waypoints[i][1] + f * (waypoints[i + 1][1] - waypoints[i][1])
                return lat, lon
            acc += leg
        return waypoints[-1]


def generate_world(
    n_users: int = 20,
    n_days: int = 5,
    seed: int = 0,
    city_config: Optional[CityConfig] = None,
    schedule_config: Optional[ScheduleConfig] = None,
    simulation_config: Optional[SimulationConfig] = None,
    noise_config: Optional[GpsNoiseConfig] = None,
    epoch: float = 1_400_000_000.0,
) -> SyntheticWorld:
    """One-call generation of a complete synthetic world.

    This is the workload entry point used by examples, tests and benchmarks:
    it builds the city, draws user profiles and schedules, simulates the GPS
    traces and returns everything bundled in a :class:`SyntheticWorld`.
    """
    if n_users < 1:
        raise ValueError("n_users must be at least 1")
    if n_days < 1:
        raise ValueError("n_days must be at least 1")
    city = City.generate(city_config, seed=seed)
    scheduler = ScheduleGenerator(city, schedule_config, seed=seed + 1)
    profiles = scheduler.make_profiles(n_users)
    schedules = scheduler.make_schedules(profiles, n_days, epoch=epoch)
    simulator = TraceSimulator(
        city,
        simulation_config,
        noise=noise_config or GpsNoiseConfig(seed=seed + 2),
        seed=seed + 3,
    )
    dataset = simulator.simulate(profiles, schedules)
    return SyntheticWorld(
        city=city,
        profiles=profiles,
        schedules=schedules,
        dataset=dataset,
        config=simulator.config,
    )


def iter_world_trajectories(
    n_users: int = 20,
    n_days: int = 5,
    seed: int = 0,
    city_config: Optional[CityConfig] = None,
    schedule_config: Optional[ScheduleConfig] = None,
    simulation_config: Optional[SimulationConfig] = None,
    noise_config: Optional[GpsNoiseConfig] = None,
    epoch: float = 1_400_000_000.0,
) -> Iterator[Trajectory]:
    """Stream the traces of :func:`generate_world`, one user at a time.

    Yields exactly the trajectories ``generate_world(...)`` would put in its
    dataset (same parameters, bit-identical arrays, empty users dropped)
    while holding at most one user's trace in memory.  This works because
    the scheduler and the simulator consume *independent* seeded RNGs:
    ``make_schedules`` draws schedules profile-major and ``simulate`` runs
    users in profile order, so interleaving the two per user preserves each
    RNG's consumption sequence exactly.

    Only the traces are streamed — the city and profiles (small) exist in
    full, the ground-truth schedule of each user only while it is simulated.
    """
    if n_users < 1:
        raise ValueError("n_users must be at least 1")
    if n_days < 1:
        raise ValueError("n_days must be at least 1")
    city = City.generate(city_config, seed=seed)
    scheduler = ScheduleGenerator(city, schedule_config, seed=seed + 1)
    profiles = scheduler.make_profiles(n_users)
    simulator = TraceSimulator(
        city,
        simulation_config,
        noise=noise_config or GpsNoiseConfig(seed=seed + 2),
        seed=seed + 3,
    )
    for profile in profiles:
        schedules = [
            scheduler.make_schedule(profile, day, epoch=epoch) for day in range(n_days)
        ]
        trajectory = simulator.simulate_user(profile, schedules)
        if len(trajectory) > 0:
            yield trajectory


def generate_world_store(
    path: str,
    n_users: int = 20,
    n_days: int = 5,
    seed: int = 0,
    overwrite: bool = False,
    city_config: Optional[CityConfig] = None,
    schedule_config: Optional[ScheduleConfig] = None,
    simulation_config: Optional[SimulationConfig] = None,
    noise_config: Optional[GpsNoiseConfig] = None,
    epoch: float = 1_400_000_000.0,
) -> "WorldStore":
    """Generate a synthetic world directly into an on-disk store artifact.

    The chunked counterpart of :func:`generate_world`: users are simulated
    and appended to a :class:`~repro.io.world_store.WorldStoreWriter` one at
    a time, so worlds far larger than RAM can be generated; the resulting
    store's dataset is bit-identical to ``generate_world(...).dataset``.
    """
    from ..io.world_store import WorldStoreWriter

    writer = WorldStoreWriter(path, overwrite=overwrite)
    try:
        for trajectory in iter_world_trajectories(
            n_users=n_users,
            n_days=n_days,
            seed=seed,
            city_config=city_config,
            schedule_config=schedule_config,
            simulation_config=simulation_config,
            noise_config=noise_config,
            epoch=epoch,
        ):
            writer.append(trajectory)
        return writer.finalize()
    finally:
        writer.close()
