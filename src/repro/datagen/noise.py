"""GPS measurement noise and sampling imperfections.

Real GPS logs are not the true positions of their carriers: each fix carries a
few meters of measurement error, and samples are regularly lost (urban
canyons, tunnels, device sleep).  Both imperfections matter to the paper's
evaluation: the POI-extraction attack must tolerate jitter, and the
speed-smoothing algorithm must remain correct on irregularly sampled traces.

:class:`GpsNoiseModel` applies both effects to a clean simulated trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.trajectory import Trajectory
from ..geo.distance import meters_per_degree

__all__ = ["GpsNoiseConfig", "GpsNoiseModel"]


@dataclass(frozen=True)
class GpsNoiseConfig:
    """Parameters of the GPS imperfection model.

    Attributes
    ----------
    horizontal_error_m:
        Standard deviation of the isotropic Gaussian position error, in
        meters.  Typical consumer GPS accuracy is 3-10 m.
    dropout_probability:
        Probability that any individual fix is lost.
    seed:
        Seed of the random generator (per-model, so repeated calls on the same
        model produce different draws while whole experiments stay
        reproducible).
    """

    horizontal_error_m: float = 5.0
    dropout_probability: float = 0.02
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.horizontal_error_m < 0.0:
            raise ValueError("horizontal_error_m must be non-negative")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must lie in [0, 1)")


class GpsNoiseModel:
    """Applies measurement noise and sample dropout to trajectories."""

    def __init__(self, config: Optional[GpsNoiseConfig] = None) -> None:
        self.config = config or GpsNoiseConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def apply(self, trajectory: Trajectory) -> Trajectory:
        """Return a noisy copy of ``trajectory``.

        At least one fix is always retained (a completely dropped trace would
        silently remove the user from the dataset, which is a workload change
        rather than a noise effect).
        """
        if len(trajectory) == 0:
            return trajectory
        cfg = self.config
        ts = np.asarray(trajectory.timestamps)
        lats = np.asarray(trajectory.lats, dtype=float).copy()
        lons = np.asarray(trajectory.lons, dtype=float).copy()

        if cfg.horizontal_error_m > 0.0:
            lat_m, lon_m = meters_per_degree(float(np.mean(lats)))
            noise_north = self._rng.normal(0.0, cfg.horizontal_error_m, size=lats.size)
            noise_east = self._rng.normal(0.0, cfg.horizontal_error_m, size=lons.size)
            lats = lats + noise_north / lat_m
            lons = lons + noise_east / lon_m

        keep = self._rng.random(ts.size) >= cfg.dropout_probability
        if not np.any(keep):
            keep[0] = True
        return Trajectory(trajectory.user_id, ts[keep], lats[keep], lons[keep])
