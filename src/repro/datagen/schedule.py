"""Daily activity schedules of synthetic users.

A schedule is the ground-truth plan of one user for one day: an ordered list
of :class:`Visit` items, each at a specific :class:`~repro.datagen.city.POI`
with an arrival and a departure time.  The :class:`ScheduleGenerator` builds
weekday-style routines (home → work → lunch/leisure → work → optional evening
activity → home) with randomized times and durations, plus lighter weekend
routines.

Stops are the ground truth against which the POI-extraction attack is scored:
every visit longer than the attack's minimum stay duration *should* be found
on raw data, and should disappear from properly protected data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .city import City, POI, POICategory

__all__ = ["Visit", "DailySchedule", "UserProfile", "ScheduleGenerator", "ScheduleConfig"]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class Visit:
    """A stop at a POI between ``arrival`` and ``departure`` (POSIX seconds)."""

    poi: POI
    arrival: float
    departure: float

    def __post_init__(self) -> None:
        if self.departure < self.arrival:
            raise ValueError("visit departs before it arrives")

    @property
    def duration(self) -> float:
        """Stay duration in seconds."""
        return self.departure - self.arrival


@dataclass(frozen=True)
class DailySchedule:
    """The ordered visits of one user during one day."""

    user_id: str
    day_index: int
    visits: Sequence[Visit]

    def __post_init__(self) -> None:
        arrivals = [v.arrival for v in self.visits]
        if arrivals != sorted(arrivals):
            raise ValueError("visits must be ordered by arrival time")

    @property
    def stops(self) -> List[Visit]:
        """Alias for ``visits`` (terminology used by the attack literature)."""
        return list(self.visits)


@dataclass(frozen=True)
class UserProfile:
    """The fixed anchors of a synthetic user: home, workplace, favourite places."""

    user_id: str
    home: POI
    work: POI
    favourite_leisure: Sequence[POI]
    commutes_via_transit: bool


@dataclass(frozen=True)
class ScheduleConfig:
    """Knobs of the schedule generator (times in hours, durations in minutes)."""

    work_start_hour: float = 9.0
    work_start_jitter_hours: float = 1.0
    work_duration_hours: float = 8.0
    work_duration_jitter_hours: float = 1.0
    lunch_probability: float = 0.6
    lunch_duration_minutes: float = 45.0
    evening_leisure_probability: float = 0.5
    leisure_duration_minutes: float = 90.0
    weekend_leisure_probability: float = 0.8
    n_favourite_leisure: int = 3
    transit_commuter_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "lunch_probability",
            "evening_leisure_probability",
            "weekend_leisure_probability",
            "transit_commuter_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.n_favourite_leisure < 1:
            raise ValueError("n_favourite_leisure must be at least 1")


class ScheduleGenerator:
    """Draws user profiles and daily schedules from a synthetic city."""

    def __init__(self, city: City, config: Optional[ScheduleConfig] = None, seed: int = 0) -> None:
        self.city = city
        self.config = config or ScheduleConfig()
        self._rng = np.random.default_rng(seed)

    # -- user profiles --------------------------------------------------------------

    def make_profiles(self, n_users: int) -> List[UserProfile]:
        """Assign a home, a workplace and favourite leisure POIs to each user.

        Homes are drawn without replacement while possible (each user has her
        own home), workplaces with replacement (several users share an
        employer — this creates recurring co-locations, i.e. mix-zones).
        """
        cfg = self.config
        homes = self.city.pois_of(POICategory.HOME)
        works = self.city.pois_of(POICategory.WORK)
        leisure = self.city.pois_of(POICategory.LEISURE)
        if not homes or not works or not leisure:
            raise ValueError("the city must contain home, work and leisure POIs")

        home_order = self._rng.permutation(len(homes))
        profiles: List[UserProfile] = []
        for i in range(n_users):
            home = homes[int(home_order[i % len(homes)])]
            work = works[int(self._rng.integers(0, len(works)))]
            n_fav = min(cfg.n_favourite_leisure, len(leisure))
            fav_idx = self._rng.choice(len(leisure), size=n_fav, replace=False)
            favs = [leisure[int(j)] for j in fav_idx]
            via_transit = bool(self._rng.random() < cfg.transit_commuter_fraction)
            profiles.append(
                UserProfile(
                    user_id=f"user_{i:03d}",
                    home=home,
                    work=work,
                    favourite_leisure=favs,
                    commutes_via_transit=via_transit,
                )
            )
        return profiles

    # -- daily schedules ---------------------------------------------------------------

    def make_schedule(self, profile: UserProfile, day_index: int, epoch: float = 0.0) -> DailySchedule:
        """Build the schedule of ``profile`` for day ``day_index``.

        ``epoch`` is the POSIX timestamp of day 0 at midnight; all visit times
        are offset from it.  Weekdays (day_index % 7 < 5) follow a commuting
        routine, weekends a leisure routine.
        """
        day_start = epoch + day_index * _SECONDS_PER_DAY
        is_weekend = day_index % 7 >= 5
        if is_weekend:
            visits = self._weekend_visits(profile, day_start)
        else:
            visits = self._weekday_visits(profile, day_start)
        return DailySchedule(user_id=profile.user_id, day_index=day_index, visits=visits)

    def make_schedules(
        self, profiles: Sequence[UserProfile], n_days: int, epoch: float = 0.0
    ) -> List[DailySchedule]:
        """All schedules for every profile over ``n_days`` consecutive days."""
        return [
            self.make_schedule(profile, day, epoch)
            for profile in profiles
            for day in range(n_days)
        ]

    # -- internals -----------------------------------------------------------------------

    def _weekday_visits(self, profile: UserProfile, day_start: float) -> List[Visit]:
        cfg = self.config
        rng = self._rng
        work_arrival = day_start + (
            cfg.work_start_hour + rng.uniform(-1.0, 1.0) * cfg.work_start_jitter_hours
        ) * _SECONDS_PER_HOUR
        work_duration = (
            cfg.work_duration_hours + rng.uniform(-1.0, 1.0) * cfg.work_duration_jitter_hours
        ) * _SECONDS_PER_HOUR
        # Leave home 20-60 minutes before work starts (commute headroom).
        home_departure = work_arrival - rng.uniform(20.0, 60.0) * 60.0
        visits: List[Visit] = [Visit(profile.home, day_start, home_departure)]

        work_end = work_arrival + work_duration
        if rng.random() < cfg.lunch_probability and profile.favourite_leisure:
            lunch_poi = profile.favourite_leisure[int(rng.integers(0, len(profile.favourite_leisure)))]
            lunch_start = work_arrival + 3.5 * _SECONDS_PER_HOUR
            lunch_end = lunch_start + cfg.lunch_duration_minutes * 60.0
            visits.append(Visit(profile.work, work_arrival, lunch_start))
            visits.append(Visit(lunch_poi, lunch_start, lunch_end))
            visits.append(Visit(profile.work, lunch_end, work_end))
        else:
            visits.append(Visit(profile.work, work_arrival, work_end))

        home_return = work_end + rng.uniform(20.0, 60.0) * 60.0
        if rng.random() < cfg.evening_leisure_probability and profile.favourite_leisure:
            poi = profile.favourite_leisure[int(rng.integers(0, len(profile.favourite_leisure)))]
            leisure_start = home_return
            leisure_end = leisure_start + cfg.leisure_duration_minutes * 60.0
            visits.append(Visit(poi, leisure_start, leisure_end))
            home_return = leisure_end + rng.uniform(15.0, 40.0) * 60.0
        visits.append(Visit(profile.home, home_return, day_start + _SECONDS_PER_DAY))
        return visits

    def _weekend_visits(self, profile: UserProfile, day_start: float) -> List[Visit]:
        cfg = self.config
        rng = self._rng
        visits: List[Visit] = []
        morning_end = day_start + rng.uniform(10.0, 12.0) * _SECONDS_PER_HOUR
        visits.append(Visit(profile.home, day_start, morning_end))
        cursor = morning_end
        if rng.random() < cfg.weekend_leisure_probability and profile.favourite_leisure:
            n_outings = int(rng.integers(1, 3))
            for _ in range(n_outings):
                poi = profile.favourite_leisure[int(rng.integers(0, len(profile.favourite_leisure)))]
                start = cursor + rng.uniform(20.0, 50.0) * 60.0
                end = start + rng.uniform(1.0, 3.0) * _SECONDS_PER_HOUR
                visits.append(Visit(poi, start, end))
                cursor = end
        visits.append(Visit(profile.home, cursor + rng.uniform(20.0, 50.0) * 60.0, day_start + _SECONDS_PER_DAY))
        return visits
