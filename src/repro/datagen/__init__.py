"""Synthetic GeoLife-like mobility workload generator (data substitution substrate)."""

from .city import City, CityConfig, POI, POICategory
from .mobility import (
    SimulationConfig,
    SyntheticWorld,
    TraceSimulator,
    generate_world,
    generate_world_store,
    iter_world_trajectories,
)
from .noise import GpsNoiseConfig, GpsNoiseModel
from .schedule import (
    DailySchedule,
    ScheduleConfig,
    ScheduleGenerator,
    UserProfile,
    Visit,
)

__all__ = [
    "City",
    "CityConfig",
    "POI",
    "POICategory",
    "GpsNoiseConfig",
    "GpsNoiseModel",
    "DailySchedule",
    "ScheduleConfig",
    "ScheduleGenerator",
    "UserProfile",
    "Visit",
    "SimulationConfig",
    "SyntheticWorld",
    "TraceSimulator",
    "generate_world",
    "iter_world_trajectories",
    "generate_world_store",
]
