"""A synthetic city: street lattice, points of interest and routing.

The paper's evaluation requires realistic mobility traces: users that stop at
semantically meaningful places (home, work, shops...) and travel between them
along shared streets, so that points of interest exist to be attacked and
natural path crossings exist to be exploited as mix-zones.  Real datasets
(GeoLife, Cabspotting) are not available offline, so this module builds a
parametric city in which such traces can be simulated with exact ground truth.

The city is a square area centred on a configurable geographic point, overlaid
with a Manhattan-like street lattice.  Points of interest (:class:`POI`) are
snapped to lattice intersections and partitioned into categories (home, work,
leisure, transit).  Routing between two POIs follows lattice streets
(rectilinear routes, optionally passing through a transit hub), which makes
different users share road segments — the natural mix-zone material.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import haversine, meters_per_degree
from ..geo.geometry import BoundingBox

__all__ = ["POICategory", "POI", "CityConfig", "City"]


class POICategory(str, Enum):
    """Semantic category of a synthetic point of interest."""

    HOME = "home"
    WORK = "work"
    LEISURE = "leisure"
    TRANSIT = "transit"


@dataclass(frozen=True)
class POI:
    """A ground-truth point of interest of the synthetic city."""

    poi_id: str
    category: POICategory
    lat: float
    lon: float

    def distance_to(self, other: "POI") -> float:
        """Great-circle distance in meters to another POI."""
        return haversine(self.lat, self.lon, other.lat, other.lon)


@dataclass(frozen=True)
class CityConfig:
    """Parameters of the synthetic city.

    Attributes
    ----------
    center_lat, center_lon:
        Geographic center (defaults to Lyon, the authors' city).
    size_m:
        Side length of the square city area in meters.
    street_spacing_m:
        Distance between two parallel streets of the lattice.
    n_homes, n_workplaces, n_leisure, n_transit_hubs:
        Number of POIs generated in each category.
    """

    center_lat: float = 45.7640
    center_lon: float = 4.8357
    size_m: float = 8000.0
    street_spacing_m: float = 400.0
    n_homes: int = 60
    n_workplaces: int = 15
    n_leisure: int = 20
    n_transit_hubs: int = 4

    def __post_init__(self) -> None:
        if self.size_m <= 0.0:
            raise ValueError(f"size_m must be positive, got {self.size_m}")
        if self.street_spacing_m <= 0.0 or self.street_spacing_m > self.size_m:
            raise ValueError(
                f"street_spacing_m must be in (0, size_m], got {self.street_spacing_m}"
            )
        for name in ("n_homes", "n_workplaces", "n_leisure", "n_transit_hubs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


class City:
    """A generated synthetic city with its POIs and rectilinear routing."""

    def __init__(self, config: CityConfig, pois: Sequence[POI]) -> None:
        self.config = config
        self.pois: List[POI] = list(pois)
        self._by_category: Dict[POICategory, List[POI]] = {c: [] for c in POICategory}
        for poi in self.pois:
            self._by_category[poi.category].append(poi)

    # -- construction -------------------------------------------------------------

    @classmethod
    def generate(cls, config: Optional[CityConfig] = None, seed: int = 0) -> "City":
        """Generate a city: lattice intersections become candidate POI sites."""
        config = config or CityConfig()
        rng = np.random.default_rng(seed)
        lat_m, lon_m = meters_per_degree(config.center_lat)
        half = config.size_m / 2.0
        n_lines = max(2, int(config.size_m // config.street_spacing_m) + 1)
        # Lattice intersection offsets in meters relative to the center.
        offsets = np.linspace(-half, half, n_lines)

        counts = {
            POICategory.HOME: config.n_homes,
            POICategory.WORK: config.n_workplaces,
            POICategory.LEISURE: config.n_leisure,
            POICategory.TRANSIT: config.n_transit_hubs,
        }
        pois: List[POI] = []
        used: set = set()
        for category, count in counts.items():
            for i in range(count):
                # Draw a lattice intersection not already used, falling back to
                # reuse if the lattice is smaller than the number of POIs.
                for _ in range(64):
                    xi = int(rng.integers(0, n_lines))
                    yi = int(rng.integers(0, n_lines))
                    if (xi, yi) not in used:
                        break
                used.add((xi, yi))
                x = float(offsets[xi])
                y = float(offsets[yi])
                lat = config.center_lat + y / lat_m
                lon = config.center_lon + x / lon_m
                pois.append(POI(f"{category.value}_{i:03d}", category, lat, lon))
        return cls(config, pois)

    # -- accessors ----------------------------------------------------------------

    @property
    def bbox(self) -> BoundingBox:
        """Bounding box of the city area (POIs plus a small margin)."""
        lats = [p.lat for p in self.pois]
        lons = [p.lon for p in self.pois]
        return BoundingBox.from_points(lats, lons).expanded(self.config.street_spacing_m)

    def pois_of(self, category: POICategory) -> List[POI]:
        """All POIs of a category."""
        return list(self._by_category[category])

    def poi_by_id(self, poi_id: str) -> POI:
        """Look up a POI by identifier; raises ``KeyError`` when absent."""
        for poi in self.pois:
            if poi.poi_id == poi_id:
                return poi
        raise KeyError(poi_id)

    # -- routing -------------------------------------------------------------------

    def route(
        self, origin: POI, destination: POI, via_transit: bool = False, rng: Optional[np.random.Generator] = None
    ) -> List[Tuple[float, float]]:
        """A rectilinear route along lattice streets between two POIs.

        The route is a list of ``(lat, lon)`` waypoints: origin, one or two
        corner points where the route turns, optionally a transit hub, and the
        destination.  Horizontal-first or vertical-first is chosen at random
        (or deterministically when no ``rng`` is given), which spreads traffic
        over the lattice while still making users share street segments.
        """
        waypoints: List[Tuple[float, float]] = [(origin.lat, origin.lon)]
        if via_transit and self._by_category[POICategory.TRANSIT]:
            hubs = self._by_category[POICategory.TRANSIT]
            hub = min(
                hubs,
                key=lambda h: haversine(origin.lat, origin.lon, h.lat, h.lon)
                + haversine(destination.lat, destination.lon, h.lat, h.lon),
            )
            waypoints.extend(self._rectilinear((origin.lat, origin.lon), (hub.lat, hub.lon), rng))
            waypoints.append((hub.lat, hub.lon))
            waypoints.extend(self._rectilinear((hub.lat, hub.lon), (destination.lat, destination.lon), rng))
        else:
            waypoints.extend(
                self._rectilinear((origin.lat, origin.lon), (destination.lat, destination.lon), rng)
            )
        waypoints.append((destination.lat, destination.lon))
        return self._dedupe(waypoints)

    def _rectilinear(
        self,
        a: Tuple[float, float],
        b: Tuple[float, float],
        rng: Optional[np.random.Generator],
    ) -> List[Tuple[float, float]]:
        """The intermediate corner of an L-shaped route from ``a`` to ``b``."""
        horizontal_first = True if rng is None else bool(rng.integers(0, 2))
        if horizontal_first:
            return [(a[0], b[1])]
        return [(b[0], a[1])]

    @staticmethod
    def _dedupe(waypoints: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
        """Remove consecutive duplicate waypoints (zero-length legs)."""
        out: List[Tuple[float, float]] = []
        for wp in waypoints:
            if not out or haversine(out[-1][0], out[-1][1], wp[0], wp[1]) > 1.0:
                out.append(wp)
        if not out:
            out = [waypoints[0]]
        return out
