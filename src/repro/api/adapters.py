"""Adapters bridging legacy mechanisms onto the unified publication API.

Three pieces:

* :func:`publish_result` — run any mechanism (new-style, legacy baseline, or
  the tuple-returning :class:`~repro.core.pipeline.Anonymizer`) and normalise
  the outcome into a :class:`~repro.api.result.PublicationResult`, harvesting
  whatever provenance the mechanism exposes (``last_report``,
  ``last_pseudonym_of``, ``public_properties()``).
* :class:`MechanismAdapter` — what :func:`repro.api.make_mechanism` returns:
  wraps a registered mechanism so ``publish()`` always yields a
  ``PublicationResult`` carrying the originating spec.
* :class:`ChainMechanism` — sequential composition (spec syntax ``a|b``),
  composing per-stage pseudonym mappings so linkage truth survives chaining.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.pipeline import AnonymizationReport
from ..core.trajectory import MobilityDataset
from .registry import parse_spec
from .result import PublicationResult

__all__ = ["publish_result", "MechanismAdapter", "ChainMechanism"]


def _harvest_properties(mechanism: Any) -> Dict[str, object]:
    getter = getattr(mechanism, "public_properties", None)
    if callable(getter):
        return dict(getter())
    return {}


def _normalize_outcome(
    mechanism: Any, outcome: Any
) -> tuple:
    """Normalise any ``publish()`` return shape to ``(dataset, report)``.

    Handles the legacy ``(dataset, AnonymizationReport)`` tuple, a
    ``PublicationResult``, and a bare dataset (harvesting ``last_report``
    if the mechanism keeps one).
    """
    if isinstance(outcome, PublicationResult):
        return outcome.dataset, outcome.report
    if (
        isinstance(outcome, tuple)
        and len(outcome) == 2
        and isinstance(outcome[1], AnonymizationReport)
    ):
        return outcome
    return outcome, getattr(mechanism, "last_report", None)


def publish_result(
    mechanism: Any,
    dataset: MobilityDataset,
    *,
    label: Optional[str] = None,
    spec: Optional[str] = None,
    params: Optional[Mapping[str, object]] = None,
) -> PublicationResult:
    """Publish ``dataset`` through ``mechanism`` and normalise the outcome."""
    started = time.perf_counter()
    outcome = mechanism.publish(dataset)
    elapsed = time.perf_counter() - started

    if isinstance(outcome, PublicationResult):
        # A new-style mechanism built the result itself; fill in whatever
        # provenance the caller knows and the mechanism left blank, so the
        # adapter's guarantees (spec, params, announced properties) hold.
        if outcome.spec is None:
            outcome.spec = spec
        if label and outcome.mechanism == "mechanism":
            outcome.mechanism = label
        if not outcome.params and params:
            outcome.params = dict(params)
        harvested = _harvest_properties(mechanism)
        if harvested:
            merged = dict(harvested)
            merged.update(outcome.properties)
            outcome.properties = merged
        if not outcome.wall_time_s:
            outcome.wall_time_s = elapsed
        return outcome
    published, report = _normalize_outcome(mechanism, outcome)
    return PublicationResult(
        dataset=published,
        mechanism=label or getattr(mechanism, "name", type(mechanism).__name__),
        spec=spec,
        params=dict(params or {}),
        report=report,
        pseudonym_of=getattr(mechanism, "last_pseudonym_of", None),
        properties=_harvest_properties(mechanism),
        wall_time_s=elapsed,
    )


class MechanismAdapter:
    """Expose any registered mechanism through the unified API surface."""

    def __init__(
        self, inner: Any, *, spec: Optional[str] = None, label: Optional[str] = None
    ) -> None:
        self.inner = inner
        self.spec = spec
        params: Dict[str, object] = {}
        name = getattr(inner, "name", type(inner).__name__)
        if spec and "|" not in spec:
            name, params = parse_spec(spec)
        self.name = label or name
        self.params = params

    def publish(self, dataset: MobilityDataset) -> PublicationResult:
        return publish_result(
            self.inner, dataset, label=self.name, spec=self.spec, params=self.params
        )

    def public_properties(self) -> Dict[str, object]:
        return _harvest_properties(self.inner)

    def __repr__(self) -> str:
        return f"MechanismAdapter(spec={self.spec!r}, inner={self.inner!r})"


class ChainMechanism:
    """Apply mechanisms in sequence, composing their provenance.

    The published output of each stage feeds the next.  The last report seen
    along the chain is kept (the paper's pipeline is the only report
    producer), and per-stage pseudonym mappings are composed so
    ``last_pseudonym_of`` always maps *final published labels* to *original
    user identifiers*.
    """

    name = "chain"

    def __init__(self, stages: Sequence[Any]) -> None:
        if not stages:
            raise ValueError("a chain needs at least one stage")
        self.stages: List[Any] = list(stages)
        self.last_report: Optional[AnonymizationReport] = None
        self.last_pseudonym_of: Optional[Dict[str, str]] = None

    def publish(self, dataset: MobilityDataset) -> MobilityDataset:
        current = dataset
        mapping: Optional[Dict[str, str]] = None
        self.last_report = None
        for stage in self.stages:
            current, report = _normalize_outcome(stage, stage.publish(current))
            if report is not None:
                self.last_report = report
            stage_mapping = getattr(stage, "last_pseudonym_of", None)
            if stage_mapping:
                composed = {}
                for new_label, previous_label in stage_mapping.items():
                    if mapping is not None:
                        composed[new_label] = mapping.get(previous_label, previous_label)
                    else:
                        composed[new_label] = previous_label
                mapping = composed
        self.last_pseudonym_of = mapping
        return current

    def public_properties(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for stage in self.stages:
            merged.update(_harvest_properties(stage))
        return merged

    def __repr__(self) -> str:
        return f"ChainMechanism({self.stages!r})"
