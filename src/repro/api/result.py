"""The unified publication result: dataset plus provenance.

:class:`PublicationResult` supersedes the two historical return shapes —
``MobilityDataset`` (baseline mechanisms) and
``(MobilityDataset, AnonymizationReport)`` (the paper's pipeline) — with one
object that always carries the published data *and* whatever provenance the
mechanism produced.  Downstream consumers (attack evaluators, metrics, the
evaluation engine) read the provenance they need instead of reaching into
mechanism-specific attributes:

* ``report`` — the pipeline's :class:`~repro.core.pipeline.AnonymizationReport`
  (zones, swap records, segment ownership) when the mechanism produced one;
* ``pseudonym_of`` — the published-label -> original-user mapping for
  relabeling mechanisms;
* ``properties`` — parameters the mechanism *publicly announces* (e.g. the
  Geo-Indistinguishability ``epsilon``), which adaptive attackers may use;
* ``identity_truth()`` — the ground-truth label mapping linkage attacks are
  scored against, derived from whichever provenance is present.

For convenience the result quacks like its dataset (``len``, iteration,
indexing), so legacy code that treated ``publish()``'s return value as a
dataset keeps working when handed a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional

from ..core.trajectory import MobilityDataset, Trajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import AnonymizationReport

__all__ = ["PublicationResult"]


@dataclass
class PublicationResult:
    """The published dataset together with unified provenance."""

    dataset: MobilityDataset
    mechanism: str = "mechanism"
    spec: Optional[str] = None
    params: Mapping[str, object] = field(default_factory=dict)
    report: Optional["AnonymizationReport"] = None
    pseudonym_of: Optional[Mapping[str, str]] = None
    properties: Mapping[str, object] = field(default_factory=dict)
    wall_time_s: float = 0.0

    # -- dataset delegation ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.dataset)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.dataset)

    def __getitem__(self, user_id: str) -> Trajectory:
        return self.dataset[user_id]

    @property
    def user_ids(self) -> List[str]:
        return self.dataset.user_ids

    @property
    def n_points(self) -> int:
        return self.dataset.n_points

    # -- provenance helpers ---------------------------------------------------------

    def identity_truth(self) -> Dict[str, str]:
        """Published label -> physical user, from the best available provenance.

        Priority order: segment ownership from a pipeline report (majority
        owner by time share, the right truth for swapped traces), then a
        recorded pseudonym mapping, then the identity mapping (mechanisms
        that keep user identifiers untouched).
        """
        if self.report is not None and self.report.segment_ownership:
            from ..metrics.privacy import majority_owner

            truth: Dict[str, str] = {}
            for label, segments in self.report.segment_ownership.items():
                owner = majority_owner(segments)
                if owner is not None:
                    truth[label] = owner
            return truth
        if self.pseudonym_of:
            return dict(self.pseudonym_of)
        return {user_id: user_id for user_id in self.dataset.user_ids}

    def summary(self) -> str:
        """One line for logs and examples."""
        origin = self.spec or self.mechanism
        text = (
            f"{origin}: {len(self.dataset)} users / {self.dataset.n_points} points"
        )
        if self.report is not None:
            text += (
                f", {self.report.n_zones} mix-zones, {self.report.n_swaps} swaps,"
                f" {self.report.suppressed_points} points suppressed"
            )
        if self.wall_time_s:
            text += f" ({self.wall_time_s:.2f}s)"
        return text
