"""Engine-facing attack evaluators.

The raw attack algorithms (stay-point extraction, DJ-Cluster,
re-identification, multi-target tracking) are registered in
:mod:`repro.attacks` and return algorithm-specific objects.  The evaluators
here wrap them behind the uniform :class:`~repro.api.protocols.Attack`
surface the :class:`~repro.experiments.engine.EvaluationEngine` expects:
``run(result, context) -> row columns``, scored against the synthetic
world's ground truth.

Registered evaluators:

* ``poi-retrieval`` — POI extraction (stay-point or DJ-Cluster) scored as
  precision/recall/F against the world's true POIs; with ``adaptive=true``
  the clustering diameter widens with the noise radius the mechanism
  publicly announces (``PublicationResult.properties``), the informed
  attacker of the paper's Geo-I critique.
* ``reident`` — the POI-matching and spatial-footprint linkage attackers,
  trained on the raw first fraction of the world, scored against the
  publication's provenance truth (``PublicationResult.identity_truth()``).
* ``tracking`` — the multi-target tracker re-linking mix-zone traversals
  recorded in the publication's report.
* ``zone-census`` — not an adversary but a zone survey (experiment E8),
  expressed as an attack so it rides the same engine axis.

Expensive attacker knowledge is cached per world object, so sweeping many
mechanisms over one world pays for knowledge construction once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..attacks.djcluster import DjCluster, DjClusterConfig
from ..attacks.poi_extraction import PoiExtractionConfig, PoiExtractor
from ..attacks.reident import (
    FootprintReidentifier,
    ReidentificationConfig,
    Reidentifier,
)
from ..attacks.tracking import MultiTargetTracker, TrackingConfig
from ..core.trajectory import MobilityDataset
from ..metrics.privacy import poi_retrieval_pooled, tracking_success
from ..mixzones.detection import MixZoneDetectionConfig, MixZoneDetector
from .protocols import EvaluationContext
from .registry import RegistryError, register_attack
from .result import PublicationResult

#: Ground-truth provider: a SyntheticWorld or RealWorld (duck-typed — both
#: expose ``dataset``, ``user_ids`` and ``true_pois_of``; no common base).
World = Any

__all__ = [
    "ground_truth_pois",
    "PoiRetrievalEvaluator",
    "ReidentEvaluator",
    "TrackingEvaluator",
    "ZoneCensusEvaluator",
]


# ---------------------------------------------------------------------------
# Ground truth and per-world caches
# ---------------------------------------------------------------------------


def ground_truth_pois(world: World, min_stay_s: float = 900.0) -> List[Tuple[float, float]]:
    """Distinct ground-truth POI locations visited long enough to be attackable."""
    seen: Dict[str, Tuple[float, float]] = {}
    for user_id in world.user_ids:
        for poi in world.true_pois_of(user_id, min_stay_s=min_stay_s):
            seen[poi.poi_id] = (poi.lat, poi.lon)
    return list(seen.values())


# Caches are keyed by (id(world), params) and hold the world only through a
# weak reference: a live reference makes a recycled id impossible to alias,
# while a dropped world frees its entries (swept on insert) instead of being
# pinned for process lifetime.
_CacheEntry = Tuple[Any, Any]  # (weakref.ref(world), value)
_TRUTH_CACHE: Dict[Tuple, _CacheEntry] = {}
_KNOWLEDGE_CACHE: Dict[Tuple, _CacheEntry] = {}


def _world_cached(
    cache: Dict[Tuple, _CacheEntry], world: World, key: Tuple, build: Callable[[], Any]
) -> Any:
    entry = cache.get(key)
    if entry is not None and entry[0]() is world:
        return entry[1]
    value = build()
    for dead in [k for k, (ref, _) in cache.items() if ref() is None]:
        del cache[dead]
    cache[key] = (weakref.ref(world), value)
    return value


def _truth_pois(world: World, min_stay_s: float) -> List[Tuple[float, float]]:
    key = (id(world), min_stay_s)
    return _world_cached(
        _TRUTH_CACHE, world, key, lambda: ground_truth_pois(world, min_stay_s)
    )


# ---------------------------------------------------------------------------
# POI retrieval
# ---------------------------------------------------------------------------


@register_attack("poi-retrieval")
@dataclass
class PoiRetrievalEvaluator:
    """Score a POI-extraction attack against the world's true POIs.

    ``execution`` selects how the publication is consumed: ``"batch"``
    (default) the vectorized attack over the finished dataset, ``"stream"``
    a point-by-point replay through :mod:`repro.streaming`'s incremental
    extractors (pinned bitwise-identical to batch).  The engine injects
    ``execution="stream"`` when the spec sets ``mode="stream"``.
    """

    algorithm: str = "staypoint"
    match_distance_m: float = 250.0
    min_stay_s: float = 900.0
    adaptive: bool = True
    base_diameter_m: float = 200.0
    engine: str = "vectorized"
    execution: str = "batch"
    name: str = field(default="poi-retrieval", init=False)

    def __post_init__(self) -> None:
        if self.algorithm not in ("staypoint", "djcluster"):
            raise RegistryError(
                f"unknown attack {self.algorithm!r}; choose 'staypoint' or 'djcluster'"
            )
        if self.engine not in ("vectorized", "reference"):
            raise RegistryError(
                f"unknown engine {self.engine!r}; choose 'vectorized' or 'reference'"
            )
        if self.execution not in ("batch", "stream"):
            raise RegistryError(
                f"unknown execution {self.execution!r}; choose 'batch' or 'stream'"
            )

    def _diameter(self, result: PublicationResult) -> float:
        """Clustering diameter an informed attacker would use.

        The planar Laplace noise of Geo-Indistinguishability has mean radius
        ``2 / epsilon``; two independently noised reports of the same place
        are on average about twice that apart, so the attacker widens the
        standard diameter by four expected noise radii.
        """
        diameter = self.base_diameter_m
        noise_radius = result.properties.get("noise_radius_m") if self.adaptive else None
        if noise_radius:
            diameter += 4.0 * float(noise_radius)
        return diameter

    def _extractor(
        self, diameter: float
    ) -> Callable[[MobilityDataset], Dict[str, list]]:
        if self.algorithm == "staypoint":
            config = PoiExtractionConfig(
                min_duration_s=self.min_stay_s,
                max_diameter_m=diameter,
                merge_distance_m=diameter / 2.0,
                engine=self.engine,
            )
            if self.execution == "stream":
                from ..streaming import replay_extract_staypoints

                return lambda dataset: replay_extract_staypoints(dataset, config)
            return PoiExtractor(config).extract_dataset
        dj_config = DjClusterConfig(
            eps_m=max(100.0, diameter / 2.0), engine=self.engine
        )
        if self.execution == "stream":
            from ..streaming import replay_extract_djclusters

            return lambda dataset: replay_extract_djclusters(dataset, dj_config)
        return DjCluster(dj_config).extract_dataset

    def run(
        self, result: PublicationResult, context: Optional[EvaluationContext] = None
    ) -> Dict[str, object]:
        if context is None or getattr(context, "world", None) is None:
            raise ValueError("poi-retrieval needs a world for ground-truth POIs")
        truth = _truth_pois(context.world, self.min_stay_s)
        extract = self._extractor(self._diameter(result))
        extracted = [poi for pois in extract(result.dataset).values() for poi in pois]
        score = poi_retrieval_pooled(
            truth, extracted, match_distance_m=self.match_distance_m
        )
        return {
            "precision": score.precision,
            "recall": score.recall,
            "f_score": score.f_score,
            "n_true_pois": score.n_true,
            "n_extracted": score.n_extracted,
        }


# ---------------------------------------------------------------------------
# Re-identification
# ---------------------------------------------------------------------------


@register_attack("reident")
@dataclass
class ReidentEvaluator:
    """POI-matching and footprint linkage attacks with split-trained knowledge.

    ``engine`` selects the implementation of both attackers:
    ``"vectorized"`` (default) the columnar kernels, ``"reference"`` the
    retained scalar oracles (spec form: ``reident:engine=reference``).
    ``execution="stream"`` replays the published dataset point by point
    through :class:`~repro.streaming.OnlineReidentifier` (knowledge is
    attacker training data and stays batch-built either way); the final
    scores are pinned bitwise-identical to batch.
    """

    train_fraction: float = 0.5
    match_distance_m: float = 250.0
    bbox_margin_m: float = 500.0
    engine: str = "vectorized"
    execution: str = "batch"
    name: str = field(default="reident", init=False)

    def __post_init__(self) -> None:
        if self.engine not in ("vectorized", "reference"):
            raise RegistryError(
                f"unknown engine {self.engine!r}; choose 'vectorized' or 'reference'"
            )
        if self.execution not in ("batch", "stream"):
            raise RegistryError(
                f"unknown execution {self.execution!r}; choose 'batch' or 'stream'"
            )

    def _attackers(
        self, world: World
    ) -> Tuple[Reidentifier, Any, FootprintReidentifier, Any]:
        from ..experiments.workloads import split_train_publish

        def build() -> Tuple[Reidentifier, Any, FootprintReidentifier, Any]:
            training, _ = split_train_publish(world, self.train_fraction)
            poi_attacker = Reidentifier(
                ReidentificationConfig(
                    match_distance_m=self.match_distance_m, engine=self.engine
                )
            )
            poi_knowledge = poi_attacker.knowledge_from_dataset(training)
            footprint_attacker = FootprintReidentifier(engine=self.engine)
            footprint_knowledge = footprint_attacker.knowledge_from_dataset(
                training, bbox=world.dataset.bbox.expanded(self.bbox_margin_m)
            )
            return poi_attacker, poi_knowledge, footprint_attacker, footprint_knowledge

        key = (
            id(world),
            self.train_fraction,
            self.match_distance_m,
            self.bbox_margin_m,
            self.engine,
        )
        return _world_cached(_KNOWLEDGE_CACHE, world, key, build)

    def run(
        self, result: PublicationResult, context: Optional[EvaluationContext] = None
    ) -> Dict[str, object]:
        if context is None or getattr(context, "world", None) is None:
            raise ValueError("reident needs a world for attacker knowledge")
        poi_attacker, poi_knowledge, fp_attacker, fp_knowledge = self._attackers(
            context.world
        )
        truth = result.identity_truth()
        if self.execution == "stream":
            from ..streaming import replay_reidentify

            poi_result, fp_result = replay_reidentify(
                result.dataset, poi_attacker, fp_attacker, poi_knowledge, fp_knowledge
            )
            poi_rate = poi_result.accuracy(truth)
            footprint_rate = fp_result.accuracy(truth)
        else:
            poi_rate = poi_attacker.attack(result.dataset, poi_knowledge).accuracy(truth)
            footprint_rate = fp_attacker.attack(result.dataset, fp_knowledge).accuracy(
                truth
            )
        report = result.report
        return {
            "poi_attack_rate": poi_rate,
            "footprint_attack_rate": footprint_rate,
            "published_users": len(result.dataset),
            "n_zones": report.n_zones if report is not None else 0,
            "n_swaps": report.n_swaps if report is not None else 0,
        }


# ---------------------------------------------------------------------------
# Tracking
# ---------------------------------------------------------------------------


@register_attack("tracking")
@dataclass
class TrackingEvaluator:
    """Multi-target tracking of mix-zone traversals recorded in the report.

    ``engine`` selects the tracker implementation (``"vectorized"`` columnar
    default; ``"reference"`` the scalar oracle, spec form
    ``tracking:engine=reference``).
    """

    search_radius_m: float = 500.0
    max_plausible_speed_mps: float = 40.0
    engine: str = "vectorized"
    name: str = field(default="tracking", init=False)

    def __post_init__(self) -> None:
        if self.engine not in ("vectorized", "reference"):
            raise RegistryError(
                f"unknown engine {self.engine!r}; choose 'vectorized' or 'reference'"
            )

    def run(
        self, result: PublicationResult, context: Optional[EvaluationContext] = None
    ) -> Dict[str, object]:
        report = result.report
        if report is None:
            raise ValueError(
                "tracking needs mechanism provenance (a report with swap records); "
                f"mechanism {result.mechanism!r} produced none"
            )
        tracker = MultiTargetTracker(
            TrackingConfig(
                search_radius_m=self.search_radius_m,
                max_plausible_speed_mps=self.max_plausible_speed_mps,
                engine=self.engine,
            )
        )
        linkages = tracker.link_zones(
            result.dataset, [record.zone for record in report.swap_records]
        )
        return {"tracking_success": tracking_success(linkages, report.swap_records)}


# ---------------------------------------------------------------------------
# Zone census (E8)
# ---------------------------------------------------------------------------


@register_attack("zone-census")
@dataclass
class ZoneCensusEvaluator:
    """How many natural mix-zones the published data contains at one radius.

    ``execution="stream"`` replays the publication through the
    sliding-window crossing detector (batch-identical zones).
    """

    radius_m: float = 100.0
    execution: str = "batch"
    name: str = field(default="zone-census", init=False)

    def __post_init__(self) -> None:
        if self.execution not in ("batch", "stream"):
            raise RegistryError(
                f"unknown execution {self.execution!r}; choose 'batch' or 'stream'"
            )

    def run(
        self, result: PublicationResult, context: Optional[EvaluationContext] = None
    ) -> Dict[str, object]:
        config = MixZoneDetectionConfig(radius_m=self.radius_m)
        if self.execution == "stream":
            from ..streaming import replay_detect_mix_zones

            zones = replay_detect_mix_zones(result.dataset, config)
        else:
            zones = MixZoneDetector(config).detect(result.dataset)
        sizes = [zone.n_participants for zone in zones] or [0]
        return {
            "zone_radius_m": self.radius_m,
            "n_zones": len(zones),
            "mean_participants": float(np.mean(sizes)),
            "max_participants": int(np.max(sizes)),
            "mean_entropy_bits": float(
                np.mean([zone.anonymity_set_entropy_bits() for zone in zones])
            )
            if zones
            else 0.0,
        }
