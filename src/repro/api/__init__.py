"""Public pluggable API: registries, protocols and the unified result.

This package is the stable surface for extending the reproduction:

>>> from repro.api import list_mechanisms, make_mechanism
>>> list_mechanisms()
['downsampling', 'geo-ind', 'identity', ...]
>>> result = make_mechanism("geo-ind:epsilon_per_m=0.005,seed=7").publish(dataset)
>>> result.dataset, result.properties["noise_radius_m"]

Third-party mechanisms/attacks/metrics plug in with the ``register_*``
decorators; everything registered becomes addressable by string spec from the
:class:`~repro.experiments.engine.ExperimentSpec` /
:class:`~repro.experiments.engine.EvaluationEngine` pair.
"""

from .adapters import ChainMechanism, MechanismAdapter, publish_result
from .protocols import Attack, Mechanism, Metric
from .registry import (
    RegistryError,
    format_spec,
    list_attacks,
    list_mechanisms,
    list_metrics,
    make_attack,
    make_mechanism,
    make_metric,
    parse_spec,
    register_attack,
    register_mechanism,
    register_metric,
)
from .result import PublicationResult

__all__ = [
    "PublicationResult",
    "Mechanism",
    "Attack",
    "Metric",
    "MechanismAdapter",
    "ChainMechanism",
    "publish_result",
    "RegistryError",
    "parse_spec",
    "format_spec",
    "register_mechanism",
    "register_attack",
    "register_metric",
    "make_mechanism",
    "make_attack",
    "make_metric",
    "list_mechanisms",
    "list_attacks",
    "list_metrics",
]
