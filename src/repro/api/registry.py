"""Named registries and string-spec construction for the pluggable API.

Every mechanism, attack and metric of the reproduction registers itself under
a short name; experiment code then refers to components *by string spec*
rather than by concrete class:

>>> from repro.api import make_mechanism, list_mechanisms
>>> mechanism = make_mechanism("geo-ind:epsilon_per_m=0.005,seed=7")
>>> result = mechanism.publish(dataset)          # -> PublicationResult

A spec is ``name`` or ``name:key=value,key=value`` where values are parsed as
int, float, bool (``true``/``false``), ``none`` or plain strings.  Mechanism
specs may additionally chain stages with ``|``
(``"smoothing:epsilon_m=100|pseudonyms"``), which builds a
:class:`~repro.api.adapters.ChainMechanism`.

Because specs are plain strings they are picklable, hashable and loggable —
the properties the :class:`~repro.experiments.engine.EvaluationEngine` relies
on for multiprocessing fan-out and per-cell caching.

Registration uses decorators, applied next to each implementation::

    @register_mechanism("geo-ind")
    def _geo_ind(epsilon_per_m=..., per_point_budget=True, seed=0):
        return GeoIndistinguishabilityMechanism(GeoIndConfig(...))

Factories declare explicit keyword parameters: the declared names are the
public spec surface, and engine-level defaults (the ``seeds`` axis) are only
injected into factories that declare the corresponding parameter.
"""

from __future__ import annotations

import difflib
import inspect
import threading
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "RegistryError",
    "Registry",
    "parse_spec",
    "format_spec",
    "MECHANISMS",
    "ATTACKS",
    "METRICS",
    "register_mechanism",
    "register_attack",
    "register_metric",
    "make_mechanism",
    "make_attack",
    "make_metric",
    "list_mechanisms",
    "list_attacks",
    "list_metrics",
]


class RegistryError(ValueError):
    """Unknown name, malformed spec or invalid parameters for a registry."""


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def _convert_value(token: str) -> Any:
    text = token.strip()
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=value,key=value"`` into ``(name, params)``."""
    if not isinstance(spec, str):
        raise RegistryError(f"spec must be a string, got {type(spec).__name__}")
    name, _, tail = spec.partition(":")
    name = name.strip()
    if not name:
        raise RegistryError(f"empty component name in spec {spec!r}")
    params: Dict[str, Any] = {}
    for pair in tail.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq or not key:
            raise RegistryError(
                f"malformed parameter {pair!r} in spec {spec!r}; expected key=value"
            )
        params[key] = _convert_value(value)
    return name, params


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, float):
        return repr(value)  # full precision, round-trips through float()
    return str(value)


def format_spec(name: str, params: Optional[Mapping[str, Any]] = None) -> str:
    """The inverse of :func:`parse_spec` (used to build specs programmatically)."""
    if not params:
        return name
    return name + ":" + ",".join(f"{k}={_format_value(v)}" for k, v in params.items())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class Registry:
    """A case-insensitive name -> factory mapping with spec-based construction."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}
        #: key -> the full (primary, *aliases) key group it was registered in.
        self._groups: Dict[str, Tuple[str, ...]] = {}
        self._primary: List[str] = []
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        aliases: Iterable[str] = (),
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            keys = [candidate.lower() for candidate in (name, *aliases)]
            with self._lock:
                # Validate every key before inserting any, so a collision
                # cannot leave a partial registration behind.
                for candidate, key in zip((name, *aliases), keys):
                    if key in self._factories:
                        raise RegistryError(
                            f"{self.kind} {candidate!r} is already registered"
                        )
                group = tuple(keys)
                for key in keys:
                    self._factories[key] = factory
                    self._groups[key] = group
                self._primary.append(name.lower())
            return factory

        if factory is not None:
            return decorate(factory)
        return decorate

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for tests of the plugin surface)."""
        key = name.lower()
        with self._lock:
            group = self._groups.get(key)
            if group is None:
                raise RegistryError(f"{self.kind} {name!r} is not registered")
            # Remove exactly the registration group (primary + its aliases)
            # the name belongs to; other registrations sharing the same
            # factory object are untouched.
            for member in group:
                self._factories.pop(member, None)
                self._groups.pop(member, None)
                if member in self._primary:
                    self._primary.remove(member)

    def names(self) -> List[str]:
        """Sorted primary names (aliases are resolvable but not listed)."""
        return sorted(self._primary)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def _resolve(self, name: str) -> Callable[..., Any]:
        factory = self._factories.get(name.lower())
        if factory is None:
            hint = ""
            close = difflib.get_close_matches(name.lower(), list(self._factories), n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            raise RegistryError(
                f"unknown {self.kind} {name!r}{hint}; registered: "
                + ", ".join(self.names())
            )
        return factory

    @staticmethod
    def _declared_params(factory: Callable[..., Any]) -> FrozenSet[str]:
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return frozenset()
        return frozenset(
            p.name
            for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        )

    def declares(self, name: str, param: str) -> bool:
        """Whether the factory registered under ``name`` declares ``param``.

        This is how callers can tell ahead of construction whether an
        injected default would take effect — e.g. the engine detecting that
        a ``mode="stream"`` spec will silently fall back to batch for an
        evaluator without an ``execution`` parameter.
        """
        return param in self._declared_params(self._resolve(name))

    def create(
        self, spec: str, *, defaults: Optional[Mapping[str, Any]] = None
    ) -> Any:
        """Build the component described by ``spec``.

        ``defaults`` are injected only for parameters the factory explicitly
        declares and the spec does not set — this is how the engine threads
        its ``seeds`` axis into seedable components without breaking the ones
        that take no seed.
        """
        name, params = parse_spec(spec)
        return self.create_parsed(name, params, defaults=defaults)

    def create_parsed(
        self,
        name: str,
        params: Dict[str, Any],
        *,
        defaults: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        factory = self._resolve(name)
        if defaults:
            declared = self._declared_params(factory)
            for key, value in defaults.items():
                if key not in params and key in declared:
                    params[key] = value
        try:
            return factory(**params)
        except TypeError as exc:
            raise RegistryError(
                f"invalid parameters for {self.kind} {name!r}: {exc}"
            ) from exc


MECHANISMS = Registry("mechanism")
ATTACKS = Registry("attack")
METRICS = Registry("metric")

register_mechanism = MECHANISMS.register
register_attack = ATTACKS.register
register_metric = METRICS.register


# ---------------------------------------------------------------------------
# Built-in plugin loading
# ---------------------------------------------------------------------------

_BUILTINS_LOADED = False
_BUILTINS_LOCK = threading.Lock()


def _load_builtin_plugins() -> None:
    """Import every module that registers built-in components.

    Deferred so that ``repro.api.registry`` itself has no dependency on the
    packages it serves (they import the decorators from here).
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED:
            return
        from .. import attacks, baselines, metrics  # noqa: F401  (side effects)
        from . import evaluators  # noqa: F401  (engine-facing attacks)

        _BUILTINS_LOADED = True


# ---------------------------------------------------------------------------
# Public constructors
# ---------------------------------------------------------------------------


def make_mechanism(
    spec: str,
    *,
    defaults: Optional[Mapping[str, Any]] = None,
    wrap: bool = True,
) -> Any:
    """Build a mechanism from a spec string.

    With ``wrap=True`` (default) the mechanism is wrapped in a
    :class:`~repro.api.adapters.MechanismAdapter` so that ``publish()``
    returns a provenance-carrying
    :class:`~repro.api.result.PublicationResult`.  ``wrap=False`` returns the
    raw registered object (legacy ``publish() -> MobilityDataset`` surface).

    ``|`` chains stages: ``"smoothing:epsilon_m=100|pseudonyms:seed=3"``.
    """
    _load_builtin_plugins()
    from .adapters import ChainMechanism, MechanismAdapter

    if isinstance(spec, str) and "|" in spec:
        parts = [part.strip() for part in spec.split("|") if part.strip()]
        if not parts:
            raise RegistryError(f"empty chain spec {spec!r}")
        inner: Any = ChainMechanism(
            [MECHANISMS.create(part, defaults=defaults) for part in parts]
        )
    else:
        inner = MECHANISMS.create(spec, defaults=defaults)
    if not wrap:
        return inner
    return MechanismAdapter(inner, spec=spec)


def make_attack(spec: str, *, defaults: Optional[Mapping[str, Any]] = None) -> Any:
    """Build an attack (raw algorithm or engine evaluator) from a spec string."""
    _load_builtin_plugins()
    return ATTACKS.create(spec, defaults=defaults)


def make_metric(spec: str, *, defaults: Optional[Mapping[str, Any]] = None) -> Any:
    """Build a metric callable ``metric(original, result) -> columns``."""
    _load_builtin_plugins()
    return METRICS.create(spec, defaults=defaults)


def list_mechanisms() -> List[str]:
    """Registered mechanism names."""
    _load_builtin_plugins()
    return MECHANISMS.names()


def list_attacks() -> List[str]:
    """Registered attack names."""
    _load_builtin_plugins()
    return ATTACKS.names()


def list_metrics() -> List[str]:
    """Registered metric names."""
    _load_builtin_plugins()
    return METRICS.names()
