"""Structural protocols of the pluggable evaluation API.

Three component kinds plug into the
:class:`~repro.experiments.engine.EvaluationEngine`; each is resolved from a
string spec through its registry (:mod:`repro.api.registry`):

* :class:`Mechanism` — transforms a dataset into a published
  :class:`~repro.api.result.PublicationResult`.  Registered implementations
  may follow the legacy surface (``publish() -> MobilityDataset``);
  :func:`repro.api.make_mechanism` wraps them so the new surface always
  holds.
* :class:`Attack` — an adversary evaluated against a publication.  The
  engine-facing form returns *row columns*; raw attack algorithms
  (``PoiExtractor``, ``Reidentifier``, ...) are also registered for direct
  use but only evaluator attacks (``poi-retrieval``, ``reident``,
  ``tracking``, ``zone-census``) can sit on an experiment's attack axis.
* :class:`Metric` — a callable scoring ``(original, result)`` into row
  columns; pure-utility metrics only read ``result.dataset``, privacy
  metrics may read ``result.report``.

These are :class:`typing.Protocol` classes: anything with the right shape
conforms, no inheritance required.
"""

from __future__ import annotations

from typing import Mapping, Optional, Protocol, runtime_checkable

from ..core.trajectory import MobilityDataset
from .result import PublicationResult

__all__ = ["Mechanism", "Attack", "Metric", "EvaluationContext"]


class EvaluationContext(Protocol):
    """What the engine hands to an attack: the world and the cell's inputs."""

    world: object  # SyntheticWorld (ground truth provider)
    input_dataset: MobilityDataset
    seed: int


@runtime_checkable
class Mechanism(Protocol):
    """A publication mechanism under the unified API."""

    name: str

    def publish(self, dataset: MobilityDataset) -> PublicationResult:
        """Return the published dataset with provenance; never mutates input."""
        ...


@runtime_checkable
class Attack(Protocol):
    """An engine-facing adversary producing result-row columns."""

    name: str

    def run(
        self, result: PublicationResult, context: Optional[EvaluationContext] = None
    ) -> Mapping[str, object]:
        """Attack ``result`` and return the columns to merge into the row."""
        ...


class Metric(Protocol):
    """A metric comparing the original data with a publication."""

    def __call__(
        self, original: MobilityDataset, result: PublicationResult
    ) -> Mapping[str, object]:
        ...
