"""Mix-zone model.

A *mix-zone* (Beresford & Stajano) is a well-delimited spatio-temporal region
in which nobody is tracked: the points falling inside the zone are suppressed
from the published data, and the identifiers of users traversing the zone may
be shuffled when they leave it.  The paper exploits *natural* mix-zones —
places where users actually meet (public transport, malls, shared roads) —
instead of artificially distorting the traces to force encounters.

This module defines the :class:`MixZone` value object and a few geometric /
information-theoretic helpers.  Detection of natural zones lives in
:mod:`repro.mixzones.detection` and identifier shuffling in
:mod:`repro.mixzones.swapping`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

import numpy as np

from ..geo.distance import haversine, haversine_array
from ..core.trajectory import Trajectory

__all__ = ["MixZone", "permutation_entropy_bits"]


@dataclass(frozen=True)
class MixZone:
    """A circular spatio-temporal region where user identities can be mixed.

    Attributes
    ----------
    center_lat, center_lon:
        Geographic center of the zone.
    radius_m:
        Radius of the zone in meters.
    t_start, t_end:
        Temporal extent (POSIX seconds) during which the zone is active.
    participants:
        Identifiers of the users that traverse the zone during its activity
        window.  A valid mix-zone has at least two participants; zones with a
        single participant provide no mixing and are discarded by detection.
    """

    center_lat: float
    center_lon: float
    radius_m: float
    t_start: float
    t_end: float
    participants: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"mix-zone radius must be positive, got {self.radius_m}")
        if self.t_end < self.t_start:
            raise ValueError(
                f"mix-zone ends ({self.t_end}) before it starts ({self.t_start})"
            )

    # -- membership tests -----------------------------------------------------

    def contains_point(self, lat: float, lon: float, timestamp: float) -> bool:
        """True when a fix falls inside the zone both spatially and temporally."""
        if not (self.t_start <= timestamp <= self.t_end):
            return False
        return haversine(lat, lon, self.center_lat, self.center_lon) <= self.radius_m

    def mask_of(self, trajectory: Trajectory) -> np.ndarray:
        """Boolean mask of the fixes of ``trajectory`` that fall inside the zone."""
        if len(trajectory) == 0:
            return np.zeros(0, dtype=bool)
        ts = np.asarray(trajectory.timestamps)
        in_time = (ts >= self.t_start) & (ts <= self.t_end)
        if not np.any(in_time):
            return np.zeros(len(trajectory), dtype=bool)
        dist = haversine_array(
            np.asarray(trajectory.lats),
            np.asarray(trajectory.lons),
            self.center_lat,
            self.center_lon,
        )
        return in_time & (dist <= self.radius_m)

    def crosses(self, trajectory: Trajectory) -> bool:
        """True when the trajectory has at least one fix inside the zone."""
        return bool(np.any(self.mask_of(trajectory)))

    # -- descriptive properties -------------------------------------------------

    @property
    def duration(self) -> float:
        """Temporal extent of the zone in seconds."""
        return self.t_end - self.t_start

    @property
    def n_participants(self) -> int:
        """Number of users traversing the zone."""
        return len(self.participants)

    @property
    def midpoint_time(self) -> float:
        """Middle of the activity window (used to order zones chronologically)."""
        return (self.t_start + self.t_end) / 2.0

    def with_participants(self, participants: Iterable[str]) -> "MixZone":
        """Copy of the zone with a different participant set."""
        return MixZone(
            self.center_lat,
            self.center_lon,
            self.radius_m,
            self.t_start,
            self.t_end,
            frozenset(participants),
        )

    def anonymity_set_entropy_bits(self) -> float:
        """Upper bound on the mixing entropy of the zone, in bits.

        With ``k`` indistinguishable participants the attacker faces ``k!``
        possible exit assignments, i.e. ``log2(k!)`` bits of uncertainty.  Real
        attackers exploit timing side channels, so the *effective* entropy
        measured by :mod:`repro.metrics.privacy` is usually lower; this value
        is the information-theoretic ceiling.
        """
        return permutation_entropy_bits(self.n_participants)

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        """Compact numeric representation ``(lat, lon, radius, t_start, t_end)``."""
        return (self.center_lat, self.center_lon, self.radius_m, self.t_start, self.t_end)


def permutation_entropy_bits(k: int) -> float:
    """``log2(k!)`` — entropy of a uniformly random permutation of ``k`` items."""
    if k <= 1:
        return 0.0
    return float(sum(math.log2(i) for i in range(2, k + 1)))
