"""Trajectory swapping inside mix-zones.

Once natural mix-zones have been detected (:mod:`repro.mixzones.detection`),
the second mechanism of the paper is applied:

* every fix falling inside a mix-zone is **suppressed** from the published
  data ("nobody is tracked inside a mix-zone"), and
* when several users traverse a zone during its activity window, the
  identifiers carried by their trajectories **may be shuffled** when they
  leave the zone, so that a trace published under one pseudonym can switch to
  the physical path of another user.

Because only identifiers are exchanged and no location is moved, spatial
utility is untouched; the only loss is the handful of points suppressed inside
the zones.

The engine keeps a full provenance record (:class:`SwapRecord` /
:class:`SwapResult`) mapping each published segment back to the physical user
that produced it.  This ground truth is what the re-identification and
tracking experiments (E4, E5) score attackers against.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.trajectory import MobilityDataset, Trajectory
from .zones import MixZone

__all__ = [
    "SwapPolicy",
    "SwapConfig",
    "SwapRecord",
    "SwapResult",
    "MixZoneSwapper",
    "swap_dataset",
]


class SwapPolicy(str, Enum):
    """How identifiers are permuted among the users traversing a zone.

    * ``ALWAYS`` — apply a uniformly random *derangement-biased* permutation:
      a non-identity permutation is drawn whenever at least two users are
      present (maximum confusion).
    * ``COIN_FLIP`` — draw a uniformly random permutation, which may be the
      identity (matches the paper's "possibly shuffled" wording).
    * ``NEVER`` — suppress in-zone points but never exchange identifiers
      (ablation: measures how much of the protection comes from suppression
      alone).
    """

    ALWAYS = "always"
    COIN_FLIP = "coin_flip"
    NEVER = "never"


@dataclass(frozen=True)
class SwapConfig:
    """Parameters of the swapping engine.

    Attributes
    ----------
    policy:
        The permutation policy (see :class:`SwapPolicy`).
    pseudonymize:
        When true (default), published identifiers are fresh pseudonyms
        (``p000``, ``p001``, ...) rather than the original user ids, as a real
        publication would do.  Provenance records always retain the mapping.
    suppress_in_zone:
        When true (default), fixes inside a zone are removed from the
        published data.  Disabling this is only useful for ablation studies.
    time_tolerance_s:
        Mix-zones are detected on the *original* data, but the data being
        published has usually been time-distorted by the speed-smoothing step,
        so a trace may cross the zone's location at a published timestamp that
        differs from the original crossing time.  The zone's temporal window
        is expanded by this tolerance when matching published fixes, so the
        spatial crossing is still recognised.  Within-session time distortion
        is bounded by the session duration, so 30 minutes covers typical trips.
    seed:
        Seed of the random generator used to draw permutations, for
        reproducible experiments.
    """

    policy: SwapPolicy = SwapPolicy.COIN_FLIP
    pseudonymize: bool = True
    suppress_in_zone: bool = True
    time_tolerance_s: float = 1800.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.time_tolerance_s < 0.0:
            raise ValueError("time_tolerance_s must be non-negative")


@dataclass(frozen=True)
class SwapRecord:
    """Provenance of one mix-zone traversal.

    ``labels_before`` and ``labels_after`` map each *physical* participant to
    the published label it carries immediately before and after the zone.
    ``swapped`` is true when at least one participant changed label.
    """

    zone: MixZone
    labels_before: Mapping[str, str]
    labels_after: Mapping[str, str]

    @property
    def swapped(self) -> bool:
        return any(self.labels_before[u] != self.labels_after[u] for u in self.labels_before)

    @property
    def participants(self) -> Tuple[str, ...]:
        return tuple(sorted(self.labels_before))


@dataclass
class SwapResult:
    """Output of the swapping engine.

    Attributes
    ----------
    dataset:
        The published :class:`MobilityDataset` (pseudonymous labels).
    records:
        One :class:`SwapRecord` per processed mix-zone, in chronological order.
    segment_ownership:
        For every published label, the chronological list of
        ``(t_start, t_end, physical_user)`` segments composing its trajectory.
        This is the ground truth used to score linkage attacks.
    pseudonym_of:
        Initial label assigned to each physical user (before any swap).
    """

    dataset: MobilityDataset
    records: List[SwapRecord]
    segment_ownership: Dict[str, List[Tuple[float, float, str]]]
    pseudonym_of: Dict[str, str]

    @property
    def n_swaps(self) -> int:
        """Number of zones in which at least one identifier changed hands."""
        return sum(1 for r in self.records if r.swapped)

    @property
    def suppressed_points(self) -> int:
        """Number of fixes removed because they fell inside a mix-zone."""
        return self._suppressed

    _suppressed: int = 0


class MixZoneSwapper:
    """Applies mix-zone suppression and identifier swapping to a dataset."""

    def __init__(self, config: Optional[SwapConfig] = None) -> None:
        self.config = config or SwapConfig()

    # -- public API ---------------------------------------------------------------

    def apply(self, dataset: MobilityDataset, zones: Sequence[MixZone]) -> SwapResult:
        """Publish ``dataset`` after suppression and swapping in ``zones``.

        Zones are processed in chronological order of their midpoint time.
        For each zone, the participants *currently having at least one fix in
        the zone* exchange their published labels according to the configured
        policy; users listed as participants but absent from the dataset are
        ignored.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        users = [t.user_id for t in dataset]

        # Initial label assignment.
        if cfg.pseudonymize:
            order = rng.permutation(len(users))
            pseudonym_of = {users[i]: f"p{rank:04d}" for rank, i in enumerate(order)}
        else:
            pseudonym_of = {u: u for u in users}

        # label_history[user] = list of (effective_from_time, label), sorted.
        label_history: Dict[str, List[Tuple[float, str]]] = {
            u: [(-np.inf, pseudonym_of[u])] for u in users
        }
        current_label: Dict[str, str] = dict(pseudonym_of)

        # In-zone suppression masks, accumulated over every zone.
        keep_masks: Dict[str, np.ndarray] = {
            t.user_id: np.ones(len(t), dtype=bool) for t in dataset
        }

        records: List[SwapRecord] = []
        suppressed = 0
        for zone in sorted(zones, key=lambda z: z.midpoint_time):
            matching_zone = self._widened(zone)
            present: List[str] = []
            for user in sorted(zone.participants):
                traj = dataset.get(user)
                if traj is None or len(traj) == 0:
                    continue
                mask = matching_zone.mask_of(traj)
                if not np.any(mask):
                    continue
                present.append(user)
                if cfg.suppress_in_zone:
                    before = int(np.count_nonzero(keep_masks[user]))
                    keep_masks[user] &= ~mask
                    suppressed += before - int(np.count_nonzero(keep_masks[user]))

            if len(present) < 2:
                continue

            labels_before = {u: current_label[u] for u in present}
            permuted = self._permute([labels_before[u] for u in present], rng)
            labels_after = dict(zip(present, permuted))
            for user, new_label in labels_after.items():
                if new_label != current_label[user]:
                    label_history[user].append((zone.midpoint_time, new_label))
                    current_label[user] = new_label
            records.append(SwapRecord(zone=zone, labels_before=labels_before, labels_after=labels_after))

        published, ownership = self._assemble(dataset, keep_masks, label_history)
        result = SwapResult(
            dataset=published,
            records=records,
            segment_ownership=ownership,
            pseudonym_of=pseudonym_of,
        )
        result._suppressed = suppressed
        return result

    # -- internals ----------------------------------------------------------------

    def _widened(self, zone: MixZone) -> MixZone:
        """The zone with its temporal window expanded by the configured tolerance."""
        tolerance = self.config.time_tolerance_s
        if tolerance == 0.0:
            return zone
        return MixZone(
            zone.center_lat,
            zone.center_lon,
            zone.radius_m,
            zone.t_start - tolerance,
            zone.t_end + tolerance,
            zone.participants,
        )

    def _permute(self, labels: List[str], rng: np.random.Generator) -> List[str]:
        """Permute ``labels`` according to the configured policy."""
        if self.config.policy is SwapPolicy.NEVER or len(labels) < 2:
            return list(labels)
        if self.config.policy is SwapPolicy.COIN_FLIP:
            perm = rng.permutation(len(labels))
            return [labels[i] for i in perm]
        # ALWAYS: reject identity permutations (possible since len >= 2).
        while True:
            perm = rng.permutation(len(labels))
            if not np.array_equal(perm, np.arange(len(labels))):
                return [labels[i] for i in perm]

    def _assemble(
        self,
        dataset: MobilityDataset,
        keep_masks: Dict[str, np.ndarray],
        label_history: Dict[str, List[Tuple[float, str]]],
    ) -> Tuple[MobilityDataset, Dict[str, List[Tuple[float, float, str]]]]:
        """Rebuild published trajectories from per-user label histories."""
        # Points accumulated per published label.
        acc: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        ownership: Dict[str, List[Tuple[float, float, str]]] = {}

        for traj in dataset:
            mask = keep_masks[traj.user_id]
            ts = np.asarray(traj.timestamps)[mask]
            lats = np.asarray(traj.lats)[mask]
            lons = np.asarray(traj.lons)[mask]
            if ts.size == 0:
                continue
            history = label_history[traj.user_id]
            boundaries = [t for t, _ in history[1:]] + [np.inf]
            for (from_time, label), until in zip(history, boundaries):
                seg_mask = (ts >= from_time) & (ts < until)
                if not np.any(seg_mask):
                    continue
                acc.setdefault(label, []).append((ts[seg_mask], lats[seg_mask], lons[seg_mask]))
                ownership.setdefault(label, []).append(
                    (float(ts[seg_mask].min()), float(ts[seg_mask].max()), traj.user_id)
                )

        trajectories = []
        for label in sorted(acc):
            ts = np.concatenate([a[0] for a in acc[label]])
            lats = np.concatenate([a[1] for a in acc[label]])
            lons = np.concatenate([a[2] for a in acc[label]])
            trajectories.append(Trajectory(label, ts, lats, lons))
            ownership[label].sort(key=lambda seg: seg[0])
        return MobilityDataset(trajectories), ownership


def swap_dataset(
    dataset: MobilityDataset,
    zones: Sequence[MixZone],
    policy: SwapPolicy = SwapPolicy.COIN_FLIP,
    seed: Optional[int] = 0,
    **kwargs,
) -> SwapResult:
    """Convenience wrapper around :class:`MixZoneSwapper`."""
    config = SwapConfig(policy=policy, seed=seed, **kwargs)
    return MixZoneSwapper(config).apply(dataset, zones)
