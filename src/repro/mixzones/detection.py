"""Detection of natural mix-zones (path crossings) in a mobility dataset.

The paper's second mechanism relies on places where users *naturally* meet:
"users continuously meet other users in public transportations, malls, work
places, etc."  This module finds those meetings without any external map data,
directly from the co-location structure of the dataset:

1. **Candidate co-locations.**  Every fix is hashed into a coarse spatial grid
   (cell size = zone radius) and a time bucket (bucket size = the temporal
   tolerance).  Two fixes of *different* users that fall in the same or
   adjacent cells and in the same or adjacent time buckets are candidate
   co-locations; exact distance and time tests confirm them.  This keeps the
   complexity near-linear in the number of points instead of quadratic in the
   number of users.
2. **Crossing events.**  Each confirmed co-location produces a crossing event
   (midpoint position, midpoint time, the two users involved), deduplicated
   to one event per (user pair, merge window).
3. **Zone clustering.**  Crossing events that are close in space (within one
   zone diameter) and time (within ``merge_gap_s``) are merged with a
   union-find pass; each resulting cluster becomes one :class:`MixZone` whose
   center is the centroid of its events, whose temporal window spans its
   events padded by the tolerance, and whose participants are every user
   involved in any of its events.

The candidate search and confirmation run entirely on the columnar kernel
layer (:mod:`repro.geo.kernels`): the dataset's cached flattened view is
bin-joined with numpy index arrays, distances are confirmed with one batched
haversine call per bin neighborhood, and deduplication is a single lexsort —
no Python loop ever touches individual fixes.  A scalar reference
implementation of the exact same semantics is retained
(``engine="reference"``) as the correctness oracle for the vectorized path.

Zones with fewer than ``min_users`` participants are dropped (a single user
cannot be mixed with anyone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.trajectory import MobilityDataset
from ..geo.distance import haversine, haversine_array
from ..geo.kernels import (
    colocation_events,
    connected_components,
    iter_neighbor_pairs,
    spatial_time_bins,
)
from .zones import MixZone

__all__ = ["MixZoneDetectionConfig", "MixZoneDetector", "CrossingEvent", "detect_mix_zones"]


@dataclass(frozen=True)
class CrossingEvent:
    """A confirmed spatio-temporal co-location between two users."""

    lat: float
    lon: float
    timestamp: float
    user_a: str
    user_b: str


@dataclass(frozen=True)
class MixZoneDetectionConfig:
    """Parameters controlling the search for natural mix-zones.

    Attributes
    ----------
    radius_m:
        Radius of the produced mix-zones, and the maximum distance between two
        users for their fixes to count as a co-location.
    max_time_gap_s:
        Maximum difference between the timestamps of two fixes for them to
        count as a co-location (users need not be sampled synchronously).
    merge_gap_s:
        Two crossing events closer than ``2 * radius_m`` in space and
        ``merge_gap_s`` in time are merged into the same zone.
    min_users:
        Minimum number of distinct participants for a zone to be kept.
    engine:
        ``"vectorized"`` (default) runs the columnar bin-join kernels;
        ``"reference"`` runs the retained scalar implementation of the same
        semantics (the equivalence oracle — quadratic, small inputs only).
    """

    radius_m: float = 100.0
    max_time_gap_s: float = 120.0
    merge_gap_s: float = 600.0
    min_users: int = 2
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"radius_m must be positive, got {self.radius_m}")
        if self.max_time_gap_s <= 0.0:
            raise ValueError(f"max_time_gap_s must be positive, got {self.max_time_gap_s}")
        if self.merge_gap_s < 0.0:
            raise ValueError(f"merge_gap_s must be non-negative, got {self.merge_gap_s}")
        if self.min_users < 2:
            raise ValueError(f"min_users must be at least 2, got {self.min_users}")
        if self.engine not in ("vectorized", "reference"):
            raise ValueError(
                f"engine must be 'vectorized' or 'reference', got {self.engine!r}"
            )


class MixZoneDetector:
    """Finds natural mix-zones in a :class:`MobilityDataset`."""

    def __init__(self, config: MixZoneDetectionConfig | None = None) -> None:
        self.config = config or MixZoneDetectionConfig()

    # -- public API -------------------------------------------------------------

    def detect(self, dataset: MobilityDataset) -> List[MixZone]:
        """Return the mix-zones of ``dataset``, ordered chronologically."""
        events = self.find_crossings(dataset)
        zones = self._cluster_events(events)
        zones = [z for z in zones if z.n_participants >= self.config.min_users]
        return sorted(zones, key=lambda z: z.midpoint_time)

    def find_crossings(self, dataset: MobilityDataset) -> List[CrossingEvent]:
        """Return every confirmed pairwise co-location of the dataset.

        Events are deduplicated to one per (user pair, merge window),
        canonically keeping the co-location with the smallest point-index
        pair in the dataset's flattened (columnar) order.
        """
        if self.config.engine == "reference":
            return self.find_crossings_reference(dataset)
        traces = dataset.columnar()
        cfg = self.config
        i, j, mid_lat, mid_lon, mid_ts = colocation_events(
            traces,
            radius_m=cfg.radius_m,
            max_time_gap_s=cfg.max_time_gap_s,
            merge_gap_s=cfg.merge_gap_s,
        )
        users = traces.user_ids
        user_index = traces.user_index
        return [
            CrossingEvent(
                lat=float(mid_lat[e]),
                lon=float(mid_lon[e]),
                timestamp=float(mid_ts[e]),
                user_a=users[int(user_index[i[e]])],
                user_b=users[int(user_index[j[e]])],
            )
            for e in range(i.size)
        ]

    def find_crossings_reference(self, dataset: MobilityDataset) -> List[CrossingEvent]:
        """Scalar reference of :meth:`find_crossings` (the equivalence oracle).

        Walks every point pair with plain Python loops, applying the same bin
        adjacency pre-filter, the same confirmation tests and the same
        canonical first-wins deduplication as the columnar kernels.  Runs in
        O(n^2): intended for tests and small datasets only.
        """
        traces = dataset.columnar()
        cfg = self.config
        n = traces.n_points
        if n < 2 or traces.n_observed_users < 2:
            return []
        lats, lons, ts = traces.lats, traces.lons, traces.timestamps
        user_index = traces.user_index
        rows, cols, buckets = spatial_time_bins(
            lats, lons, ts, cfg.radius_m, cfg.max_time_gap_s
        )

        events: List[CrossingEvent] = []
        seen: set = set()
        for i in range(n):
            for j in range(i + 1, n):
                if user_index[i] == user_index[j]:
                    continue
                if (
                    abs(int(rows[i]) - int(rows[j])) > 1
                    or abs(int(cols[i]) - int(cols[j])) > 1
                    or abs(int(buckets[i]) - int(buckets[j])) > 1
                ):
                    continue
                if abs(float(ts[i] - ts[j])) > cfg.max_time_gap_s:
                    continue
                key = (
                    int(min(user_index[i], user_index[j])),
                    int(max(user_index[i], user_index[j])),
                    int(min(float(ts[i]), float(ts[j])) // max(cfg.merge_gap_s, 1.0)),
                )
                if key in seen:
                    continue
                dist = haversine(float(lats[i]), float(lons[i]), float(lats[j]), float(lons[j]))
                if dist > cfg.radius_m:
                    continue
                seen.add(key)
                events.append(
                    CrossingEvent(
                        lat=float((lats[i] + lats[j]) / 2.0),
                        lon=float((lons[i] + lons[j]) / 2.0),
                        timestamp=float((ts[i] + ts[j]) / 2.0),
                        user_a=traces.user_ids[int(user_index[i])],
                        user_b=traces.user_ids[int(user_index[j])],
                    )
                )
        return events

    # -- internals --------------------------------------------------------------

    def _cluster_events(self, events: List[CrossingEvent]) -> List[MixZone]:
        """Merge crossing events into mix-zones by vectorized transitive closure.

        Events are bin-joined exactly like fixes (cell size = one zone
        diameter, bucket size = the merge gap), candidate pairs are confirmed
        with one batched haversine/time test, and clusters are the connected
        components of the confirmed-pair graph.
        """
        cfg = self.config
        if not events:
            return []
        # Canonical event order: clustering arithmetic (centroid sums) is then
        # independent of the order the crossing search emitted the events in,
        # so both detection engines produce bitwise-identical zones.
        events = sorted(
            events, key=lambda e: (e.timestamp, e.lat, e.lon, e.user_a, e.user_b)
        )
        times = np.array([e.timestamp for e in events])
        lats = np.array([e.lat for e in events])
        lons = np.array([e.lon for e in events])

        diameter = 2.0 * cfg.radius_m
        rows, cols, buckets = spatial_time_bins(
            lats, lons, times, diameter, max(cfg.merge_gap_s, 1.0)
        )

        edges_a: List[np.ndarray] = []
        edges_b: List[np.ndarray] = []
        for i, j in iter_neighbor_pairs(rows, cols, buckets):
            mask = np.abs(times[i] - times[j]) <= cfg.merge_gap_s
            i, j = i[mask], j[mask]
            if i.size == 0:
                continue
            close = haversine_array(lats[i], lons[i], lats[j], lons[j]) <= diameter
            if close.any():
                edges_a.append(i[close])
                edges_b.append(j[close])
        labels = connected_components(
            len(events),
            np.concatenate(edges_a) if edges_a else np.zeros(0, dtype=np.int64),
            np.concatenate(edges_b) if edges_b else np.zeros(0, dtype=np.int64),
        )

        clusters: Dict[int, List[CrossingEvent]] = {}
        for idx, event in enumerate(events):
            clusters.setdefault(int(labels[idx]), []).append(event)

        zones: List[MixZone] = []
        for cluster in clusters.values():
            cluster_lats = np.array([e.lat for e in cluster])
            cluster_lons = np.array([e.lon for e in cluster])
            cluster_times = np.array([e.timestamp for e in cluster])
            participants = frozenset(
                user for e in cluster for user in (e.user_a, e.user_b)
            )
            zones.append(
                MixZone(
                    center_lat=float(cluster_lats.mean()),
                    center_lon=float(cluster_lons.mean()),
                    radius_m=cfg.radius_m,
                    t_start=float(cluster_times.min() - cfg.max_time_gap_s),
                    t_end=float(cluster_times.max() + cfg.max_time_gap_s),
                    participants=participants,
                )
            )
        return zones


def detect_mix_zones(
    dataset: MobilityDataset,
    radius_m: float = 100.0,
    max_time_gap_s: float = 120.0,
    **kwargs,
) -> List[MixZone]:
    """Convenience wrapper around :class:`MixZoneDetector`."""
    config = MixZoneDetectionConfig(radius_m=radius_m, max_time_gap_s=max_time_gap_s, **kwargs)
    return MixZoneDetector(config).detect(dataset)
