"""Detection of natural mix-zones (path crossings) in a mobility dataset.

The paper's second mechanism relies on places where users *naturally* meet:
"users continuously meet other users in public transportations, malls, work
places, etc."  This module finds those meetings without any external map data,
directly from the co-location structure of the dataset:

1. **Candidate co-locations.**  Every fix is hashed into a coarse spatial grid
   (cell size = zone radius) and a time bucket (bucket size = the temporal
   tolerance).  Two fixes of *different* users that fall in the same or
   adjacent cells and in the same or adjacent time buckets are candidate
   co-locations; exact distance and time tests confirm them.  This keeps the
   complexity near-linear in the number of points instead of quadratic in the
   number of users.
2. **Crossing events.**  Each confirmed co-location produces a crossing event
   (midpoint position, midpoint time, the two users involved).
3. **Zone clustering.**  Crossing events that are close in space (within one
   zone diameter) and time (within ``merge_gap_s``) are merged with a
   union-find pass; each resulting cluster becomes one :class:`MixZone` whose
   center is the centroid of its events, whose temporal window spans its
   events padded by the tolerance, and whose participants are every user
   involved in any of its events.

Zones with fewer than ``min_users`` participants are dropped (a single user
cannot be mixed with anyone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.trajectory import MobilityDataset
from ..geo.distance import haversine, meters_per_degree
from .zones import MixZone

__all__ = ["MixZoneDetectionConfig", "MixZoneDetector", "CrossingEvent", "detect_mix_zones"]


@dataclass(frozen=True)
class CrossingEvent:
    """A confirmed spatio-temporal co-location between two users."""

    lat: float
    lon: float
    timestamp: float
    user_a: str
    user_b: str


@dataclass(frozen=True)
class MixZoneDetectionConfig:
    """Parameters controlling the search for natural mix-zones.

    Attributes
    ----------
    radius_m:
        Radius of the produced mix-zones, and the maximum distance between two
        users for their fixes to count as a co-location.
    max_time_gap_s:
        Maximum difference between the timestamps of two fixes for them to
        count as a co-location (users need not be sampled synchronously).
    merge_gap_s:
        Two crossing events closer than ``2 * radius_m`` in space and
        ``merge_gap_s`` in time are merged into the same zone.
    min_users:
        Minimum number of distinct participants for a zone to be kept.
    """

    radius_m: float = 100.0
    max_time_gap_s: float = 120.0
    merge_gap_s: float = 600.0
    min_users: int = 2

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"radius_m must be positive, got {self.radius_m}")
        if self.max_time_gap_s <= 0.0:
            raise ValueError(f"max_time_gap_s must be positive, got {self.max_time_gap_s}")
        if self.merge_gap_s < 0.0:
            raise ValueError(f"merge_gap_s must be non-negative, got {self.merge_gap_s}")
        if self.min_users < 2:
            raise ValueError(f"min_users must be at least 2, got {self.min_users}")


class _UnionFind:
    """Minimal union-find used to cluster crossing events into zones."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


class MixZoneDetector:
    """Finds natural mix-zones in a :class:`MobilityDataset`."""

    def __init__(self, config: MixZoneDetectionConfig | None = None) -> None:
        self.config = config or MixZoneDetectionConfig()

    # -- public API -------------------------------------------------------------

    def detect(self, dataset: MobilityDataset) -> List[MixZone]:
        """Return the mix-zones of ``dataset``, ordered chronologically."""
        events = self.find_crossings(dataset)
        zones = self._cluster_events(events)
        zones = [z for z in zones if z.n_participants >= self.config.min_users]
        return sorted(zones, key=lambda z: z.midpoint_time)

    def find_crossings(self, dataset: MobilityDataset) -> List[CrossingEvent]:
        """Return every confirmed pairwise co-location of the dataset."""
        cfg = self.config
        non_empty = [t for t in dataset if len(t) > 0]
        if len(non_empty) < 2:
            return []

        # Flatten the dataset into parallel arrays for fast binning.
        user_of: List[str] = []
        lats_list, lons_list, ts_list = [], [], []
        for traj in non_empty:
            user_of.extend([traj.user_id] * len(traj))
            lats_list.append(np.asarray(traj.lats))
            lons_list.append(np.asarray(traj.lons))
            ts_list.append(np.asarray(traj.timestamps))
        lats = np.concatenate(lats_list)
        lons = np.concatenate(lons_list)
        ts = np.concatenate(ts_list)

        # Bin every fix into a (cell_row, cell_col, time_bucket) key.
        ref_lat = float(np.mean(lats))
        lat_m, lon_m = meters_per_degree(ref_lat)
        lat_step = cfg.radius_m / lat_m
        lon_step = cfg.radius_m / lon_m
        rows = np.floor((lats - lats.min()) / lat_step).astype(np.int64)
        cols = np.floor((lons - lons.min()) / lon_step).astype(np.int64)
        buckets = np.floor((ts - ts.min()) / cfg.max_time_gap_s).astype(np.int64)

        bins: Dict[Tuple[int, int, int], List[int]] = {}
        for idx in range(lats.size):
            bins.setdefault((int(rows[idx]), int(cols[idx]), int(buckets[idx])), []).append(idx)

        events: List[CrossingEvent] = []
        seen_pairs: set = set()
        for (row, col, bucket), members in bins.items():
            # Gather this bin plus spatially and temporally adjacent bins so
            # that co-locations straddling a bin boundary are not missed.
            candidates = list(members)
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    for db in (-1, 0, 1):
                        if dr == dc == db == 0:
                            continue
                        other = bins.get((row + dr, col + dc, bucket + db))
                        if other:
                            candidates.extend(other)
            if len(candidates) < 2:
                continue
            events.extend(self._confirm_pairs(members, candidates, user_of, lats, lons, ts, seen_pairs))
        return events

    # -- internals --------------------------------------------------------------

    def _confirm_pairs(
        self,
        members: Sequence[int],
        candidates: Sequence[int],
        user_of: Sequence[str],
        lats: np.ndarray,
        lons: np.ndarray,
        ts: np.ndarray,
        seen_pairs: set,
    ) -> List[CrossingEvent]:
        """Exact distance/time confirmation of candidate co-locations.

        To bound the number of produced events, at most one event is kept per
        (user_a, user_b, time bucket) triple; ``seen_pairs`` carries that
        dedup state across bins.
        """
        cfg = self.config
        events: List[CrossingEvent] = []
        for i in members:
            for j in candidates:
                if j <= i:
                    continue
                ua, ub = user_of[i], user_of[j]
                if ua == ub:
                    continue
                dt = abs(float(ts[i] - ts[j]))
                if dt > cfg.max_time_gap_s:
                    continue
                pair_key = (
                    min(ua, ub),
                    max(ua, ub),
                    int(min(ts[i], ts[j]) // max(cfg.merge_gap_s, 1.0)),
                )
                if pair_key in seen_pairs:
                    continue
                dist = haversine(float(lats[i]), float(lons[i]), float(lats[j]), float(lons[j]))
                if dist > cfg.radius_m:
                    continue
                seen_pairs.add(pair_key)
                events.append(
                    CrossingEvent(
                        lat=float((lats[i] + lats[j]) / 2.0),
                        lon=float((lons[i] + lons[j]) / 2.0),
                        timestamp=float((ts[i] + ts[j]) / 2.0),
                        user_a=ua,
                        user_b=ub,
                    )
                )
        return events

    def _cluster_events(self, events: List[CrossingEvent]) -> List[MixZone]:
        """Merge crossing events into mix-zones with a union-find pass."""
        cfg = self.config
        if not events:
            return []
        events = sorted(events, key=lambda e: e.timestamp)
        uf = _UnionFind(len(events))
        # Events are time-sorted, so only a sliding window needs to be checked.
        for i in range(len(events)):
            for j in range(i + 1, len(events)):
                if events[j].timestamp - events[i].timestamp > cfg.merge_gap_s:
                    break
                d = haversine(events[i].lat, events[i].lon, events[j].lat, events[j].lon)
                if d <= 2.0 * cfg.radius_m:
                    uf.union(i, j)

        clusters: Dict[int, List[CrossingEvent]] = {}
        for idx, event in enumerate(events):
            clusters.setdefault(uf.find(idx), []).append(event)

        zones: List[MixZone] = []
        for cluster in clusters.values():
            lats = np.array([e.lat for e in cluster])
            lons = np.array([e.lon for e in cluster])
            times = np.array([e.timestamp for e in cluster])
            participants = frozenset(
                user for e in cluster for user in (e.user_a, e.user_b)
            )
            zones.append(
                MixZone(
                    center_lat=float(lats.mean()),
                    center_lon=float(lons.mean()),
                    radius_m=cfg.radius_m,
                    t_start=float(times.min() - cfg.max_time_gap_s),
                    t_end=float(times.max() + cfg.max_time_gap_s),
                    participants=participants,
                )
            )
        return zones


def detect_mix_zones(
    dataset: MobilityDataset,
    radius_m: float = 100.0,
    max_time_gap_s: float = 120.0,
    **kwargs,
) -> List[MixZone]:
    """Convenience wrapper around :class:`MixZoneDetector`."""
    config = MixZoneDetectionConfig(radius_m=radius_m, max_time_gap_s=max_time_gap_s, **kwargs)
    return MixZoneDetector(config).detect(dataset)
