"""Mix-zone detection and trajectory swapping (second mechanism of the paper)."""

from .detection import CrossingEvent, MixZoneDetectionConfig, MixZoneDetector, detect_mix_zones
from .swapping import (
    MixZoneSwapper,
    SwapConfig,
    SwapPolicy,
    SwapRecord,
    SwapResult,
    swap_dataset,
)
from .zones import MixZone, permutation_entropy_bits

__all__ = [
    "MixZone",
    "permutation_entropy_bits",
    "CrossingEvent",
    "MixZoneDetectionConfig",
    "MixZoneDetector",
    "detect_mix_zones",
    "MixZoneSwapper",
    "SwapConfig",
    "SwapPolicy",
    "SwapRecord",
    "SwapResult",
    "swap_dataset",
]
